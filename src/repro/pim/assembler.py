"""A small text assembler for PIM microkernels.

Syntax (one instruction per line; ``;`` or ``#`` start comments)::

    MOV   GRF_A[A], HOST          ; AAM-indexed dst, WR-burst source
    MAC   GRF_B[A], EVEN_BANK, GRF_A[A]
    ADD   GRF_B[2], GRF_A[1], SRF_A[0]
    MOV(RELU) GRF_A[0], GRF_B[0]
    FILL  GRF_A[A], ODD_BANK
    NOP   2
    JUMP  -1, 7                   ; offset, iterations
    EXIT

Register references are ``SPACE[i]`` with ``i`` a register number, or
``SPACE[A]`` for address-aligned mode (the whole instruction becomes AAM if
any operand uses ``[A]``).  Bank and HOST operands take no index.
``disassemble`` round-trips a CRF image back to text.
"""

from __future__ import annotations

import re
from typing import List, Sequence, Tuple

from .isa import (
    CRF_ENTRIES,
    Instruction,
    Opcode,
    Operand,
    OperandSpace,
    decode,
    encode,
    exit_,
    jump,
    nop,
)

__all__ = ["assemble", "assemble_words", "disassemble", "AssemblyError"]


class AssemblyError(ValueError):
    """The microkernel source could not be assembled."""


_OPERAND_RE = re.compile(
    r"^(?P<space>[A-Z_]+)(?:\[(?P<index>A|\d+)\])?$", re.IGNORECASE
)

_ALIASES = {
    "EVENBANK": "EVEN_BANK",
    "ODDBANK": "ODD_BANK",
    "BANK": "EVEN_BANK",
}


def _parse_operand(text: str, line_no: int) -> Tuple[Operand, bool]:
    """Parse one operand; returns (operand, is_aam)."""
    match = _OPERAND_RE.match(text.strip())
    if not match:
        raise AssemblyError(f"line {line_no}: cannot parse operand {text!r}")
    name = match.group("space").upper()
    name = _ALIASES.get(name, name)
    try:
        space = OperandSpace[name]
    except KeyError:
        raise AssemblyError(f"line {line_no}: unknown operand space {name!r}") from None
    index_text = match.group("index")
    if index_text is None:
        return Operand(space, 0), False
    if index_text.upper() == "A":
        return Operand(space, 0), True
    return Operand(space, int(index_text)), False


def _parse_line(line: str, line_no: int) -> Instruction:
    mnemonic, _, rest = line.partition(" ")
    mnemonic = mnemonic.upper()
    relu = False
    if mnemonic == "MOV(RELU)":
        mnemonic, relu = "MOV", True
    operands = [part.strip() for part in rest.split(",") if part.strip()]
    if mnemonic == "NOP":
        count = int(operands[0]) if operands else 1
        return nop(count)
    if mnemonic == "JUMP":
        if len(operands) != 2:
            raise AssemblyError(f"line {line_no}: JUMP takes offset, iterations")
        return jump(int(operands[0]), int(operands[1]))
    if mnemonic == "EXIT":
        return exit_()
    try:
        opcode = Opcode[mnemonic]
    except KeyError:
        raise AssemblyError(f"line {line_no}: unknown mnemonic {mnemonic!r}") from None
    parsed = [_parse_operand(op, line_no) for op in operands]
    aam = any(is_aam for _, is_aam in parsed)
    ops = [op for op, _ in parsed]
    none = Operand(OperandSpace.NONE, 0)
    if opcode in (Opcode.MOV, Opcode.FILL):
        if len(ops) != 2:
            raise AssemblyError(f"line {line_no}: {mnemonic} takes dst, src")
        return Instruction(opcode, dst=ops[0], src0=ops[1], aam=aam, relu=relu)
    if opcode in (Opcode.ADD, Opcode.MUL):
        if len(ops) != 3:
            raise AssemblyError(f"line {line_no}: {mnemonic} takes dst, src0, src1")
        return Instruction(opcode, dst=ops[0], src0=ops[1], src1=ops[2], aam=aam)
    if opcode is Opcode.MAC:
        if len(ops) != 3:
            raise AssemblyError(f"line {line_no}: MAC takes dst, src0, src1")
        return Instruction(
            opcode, dst=ops[0], src0=ops[1], src1=ops[2], src2=ops[0], aam=aam
        )
    if opcode is Opcode.MAD:
        if len(ops) != 4:
            raise AssemblyError(f"line {line_no}: MAD takes dst, src0, src1, src2")
        return Instruction(
            opcode, dst=ops[0], src0=ops[1], src1=ops[2], src2=ops[3], aam=aam
        )
    raise AssemblyError(f"line {line_no}: cannot assemble {mnemonic!r}")


def assemble(source: str) -> List[Instruction]:
    """Assemble microkernel source into a list of instructions."""
    instructions: List[Instruction] = []
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = re.split(r"[;#]", raw, maxsplit=1)[0].strip()
        if not line:
            continue
        instructions.append(_parse_line(line, line_no))
    if len(instructions) > CRF_ENTRIES:
        raise AssemblyError(
            f"microkernel has {len(instructions)} instructions; CRF holds {CRF_ENTRIES}"
        )
    return instructions


def assemble_words(source: str) -> List[int]:
    """Assemble to 32-bit CRF words, zero-padded to the full CRF."""
    words = [encode(instr) for instr in assemble(source)]
    return words + [0] * (CRF_ENTRIES - len(words))


def disassemble(words: Sequence[int]) -> List[str]:
    """Disassemble CRF words (stops at the first EXIT or zero NOP tail)."""
    lines: List[str] = []
    for word in words:
        instr = decode(word)
        lines.append(repr(instr))
        if instr.opcode is Opcode.EXIT:
            break
    return lines
