"""The PIM-HBM instruction set architecture (Section III-C, Table III).

Nine RISC-style 32-bit instructions in three classes:

* flow control — ``NOP``, ``JUMP``, ``EXIT``
* arithmetic — ``ADD``, ``MUL``, ``MAC``, ``MAD``
* data movement — ``MOV``, ``FILL`` (``MOV`` may apply ReLU via the R flag)

The paper's Table III bit layout is not fully legible at field granularity,
so this module defines a concrete layout with the documented fields (OPCODE,
DST/SRC0/SRC1/SRC2 operand-space selectors, register indices, the ReLU 'R'
flag and the address-aligned-mode 'A' flag, and the IMM0/IMM1 immediates for
control instructions).  Encode/decode are exact inverses (property-tested).

Operand spaces follow Table II: ``GRF_A``/``GRF_B`` (vector registers),
``SRF_M``/``SRF_A`` (scalar registers, broadcast to all 16 lanes),
``EVEN_BANK``/``ODD_BANK`` (the 256-bit column of the bank pair at the
triggering DRAM command's row/column address).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Optional, Tuple

from ..common.bitfield import Layout

__all__ = [
    "Opcode",
    "OperandSpace",
    "Operand",
    "Instruction",
    "encode",
    "decode",
    "nop",
    "jump",
    "exit_",
    "mov",
    "fill",
    "add",
    "mul",
    "mac",
    "mad",
    "legal_compute_combinations",
    "legal_move_combinations",
    "CRF_ENTRIES",
    "GRF_REGS",
    "SRF_REGS",
]

CRF_ENTRIES = 32  # 32 x 32-bit instruction buffer (Table IV)
GRF_REGS = 8  # per half: GRF_A and GRF_B each hold 8 x 256-bit registers
SRF_REGS = 8  # per half: SRF_M and SRF_A each hold 8 x 16-bit registers


class Opcode(enum.IntEnum):
    """Instruction opcodes (4 bits)."""

    NOP = 0
    JUMP = 1
    EXIT = 2
    MOV = 4
    FILL = 5
    ADD = 8
    MUL = 9
    MAC = 10
    MAD = 11

    @property
    def is_control(self) -> bool:
        return self in (Opcode.NOP, Opcode.JUMP, Opcode.EXIT)

    @property
    def is_arithmetic(self) -> bool:
        return self in (Opcode.ADD, Opcode.MUL, Opcode.MAC, Opcode.MAD)

    @property
    def is_move(self) -> bool:
        return self in (Opcode.MOV, Opcode.FILL)


class OperandSpace(enum.IntEnum):
    """Where an operand lives (3-bit selector)."""

    EVEN_BANK = 0
    ODD_BANK = 1
    GRF_A = 2
    GRF_B = 3
    SRF_M = 4
    SRF_A = 5
    # The 256-bit burst of the triggering DRAM WR command.  Section III-A:
    # "the host processor pushes 256 bits to the write drivers *or PIM
    # registers* of all the banks" — this is how input vectors are staged
    # into GRF without a round trip through the cell array.
    HOST = 6
    NONE = 7

    @property
    def is_bank(self) -> bool:
        return self in (OperandSpace.EVEN_BANK, OperandSpace.ODD_BANK)

    @property
    def is_grf(self) -> bool:
        return self in (OperandSpace.GRF_A, OperandSpace.GRF_B)

    @property
    def is_srf(self) -> bool:
        return self in (OperandSpace.SRF_M, OperandSpace.SRF_A)

    @property
    def reg_count(self) -> int:
        if self.is_grf:
            return GRF_REGS
        if self.is_srf:
            return SRF_REGS
        return 0


@dataclass(frozen=True)
class Operand:
    """An operand reference: a space plus a register index.

    The index is meaningful only for register spaces; for bank operands the
    address comes implicitly from the triggering DRAM command (Section IV-B),
    and under AAM the index field is ignored and replaced by address bits.
    """

    space: OperandSpace
    index: int = 0

    def __post_init__(self) -> None:
        if self.space.is_grf and not 0 <= self.index < GRF_REGS:
            raise ValueError(f"GRF index {self.index} out of range")
        if self.space.is_srf and not 0 <= self.index < SRF_REGS:
            raise ValueError(f"SRF index {self.index} out of range")

    def __repr__(self) -> str:
        if self.space.reg_count == 0:
            return self.space.name
        return f"{self.space.name}[{self.index}]"


NONE_OPERAND = Operand(OperandSpace.NONE, 0)


# Table III-style 32-bit layouts.  Control instructions carry immediates;
# data/ALU instructions carry operand spaces, flags and register indices.
CONTROL_LAYOUT = Layout(
    32,
    [
        ("opcode", 31, 28),
        ("imm0", 27, 17),  # jump offset (signed, 11 bits) / NOP count
        ("imm1", 16, 0),  # loop iteration count
    ],
)
DATA_LAYOUT = Layout(
    32,
    [
        ("opcode", 31, 28),
        ("dst_space", 27, 25),
        ("src0_space", 24, 22),
        ("src1_space", 21, 19),
        ("src2_space", 18, 16),
        ("aam", 15, 15),
        ("relu", 14, 14),
        ("dst_idx", 10, 8),
        ("src0_idx", 6, 4),
        ("src1_idx", 2, 0),
    ],
)

_IMM0_SIGN = 1 << 10
_IMM0_MASK = (1 << 11) - 1


@dataclass(frozen=True)
class Instruction:
    """A decoded PIM instruction.

    ``imm0``/``imm1`` are used by control instructions (JUMP offset and
    iteration count; NOP cycle count).  ``src2`` is used by MAC (accumulator,
    always equal to ``dst``) and MAD (the SRF_A addend sharing SRC1's index).
    """

    opcode: Opcode
    dst: Operand = NONE_OPERAND
    src0: Operand = NONE_OPERAND
    src1: Operand = NONE_OPERAND
    src2: Operand = NONE_OPERAND
    aam: bool = False
    relu: bool = False
    imm0: int = 0
    imm1: int = 0

    def __post_init__(self) -> None:
        _validate(self)

    def __repr__(self) -> str:
        if self.opcode is Opcode.NOP:
            return f"NOP {self.imm0}" if self.imm0 else "NOP"
        if self.opcode is Opcode.JUMP:
            return f"JUMP {self.imm0}, {self.imm1}"
        if self.opcode is Opcode.EXIT:
            return "EXIT"
        name = "MOV(RELU)" if (self.opcode is Opcode.MOV and self.relu) else self.opcode.name

        def render(op: Operand) -> str:
            if op.space.reg_count and self.aam:
                return f"{op.space.name}[A]"
            return repr(op)

        parts = [render(self.dst), render(self.src0)]
        if self.src1.space is not OperandSpace.NONE:
            parts.append(render(self.src1))
        if self.opcode is Opcode.MAD:
            parts.append(render(self.src2))
        return f"{name} " + ", ".join(parts)


class IllegalInstruction(ValueError):
    """The instruction violates an ISA constraint from Table II."""


def _validate(instr: Instruction) -> None:
    op = instr.opcode
    if op.is_control:
        if op is Opcode.JUMP and instr.imm1 < 0:
            raise IllegalInstruction("JUMP iteration count must be non-negative")
        if op is Opcode.NOP and instr.imm0 < 0:
            raise IllegalInstruction("NOP count must be non-negative")
        return
    dst, src0, src1 = instr.dst.space, instr.src0.space, instr.src1.space
    if op is Opcode.MOV:
        # MOV: GRF/BANK/SRF/HOST -> GRF, or GRF -> BANK (write-driver path).
        if not (
            (
                dst.is_grf
                and (
                    src0.is_grf
                    or src0.is_bank
                    or src0.is_srf
                    or src0 is OperandSpace.HOST
                )
            )
            or (dst.is_bank and src0.is_grf)
        ):
            raise IllegalInstruction(f"illegal MOV {src0} -> {dst}")
        return
    if op is Opcode.FILL:
        # FILL: BANK -> GRF (bulk load of operands).
        if not (dst.is_grf and src0.is_bank):
            raise IllegalInstruction(f"illegal FILL {src0} -> {dst}")
        return
    if instr.relu:
        raise IllegalInstruction("ReLU flag is only defined for MOV")
    if op is Opcode.MUL:
        if not (
            dst.is_grf
            and (src0.is_grf or src0.is_bank)
            and (src1.is_grf or src1.is_bank or src1 is OperandSpace.SRF_M)
        ):
            raise IllegalInstruction(f"illegal MUL operands {src0}, {src1} -> {dst}")
        return
    if op is Opcode.ADD:
        ok_src = lambda s: s.is_grf or s.is_bank or s is OperandSpace.SRF_A
        if not (dst.is_grf and ok_src(src0) and ok_src(src1)):
            raise IllegalInstruction(f"illegal ADD operands {src0}, {src1} -> {dst}")
        return
    if op is Opcode.MAC:
        # Accumulator (src2) is the destination register (Section III-C).
        if not (
            dst.is_grf
            and (src0.is_grf or src0.is_bank)
            and (src1.is_grf or src1.is_bank or src1 is OperandSpace.SRF_M)
        ):
            raise IllegalInstruction(f"illegal MAC operands {src0}, {src1} -> {dst}")
        return
    if op is Opcode.MAD:
        # dst = src0 * src1 + src2; src2 is SRF_A sharing SRC1's index when
        # src1 is SRF_M (Section III-C), or a GRF register.
        if not (
            dst.is_grf
            and (src0.is_grf or src0.is_bank)
            and (src1.is_grf or src1.is_bank or src1 is OperandSpace.SRF_M)
            and (instr.src2.space.is_grf or instr.src2.space is OperandSpace.SRF_A)
        ):
            raise IllegalInstruction(f"illegal MAD operands -> {dst}")
        return
    raise IllegalInstruction(f"unknown opcode {op}")


# -- encoding ----------------------------------------------------------------


def encode(instr: Instruction) -> int:
    """Encode an instruction to its 32-bit word."""
    if instr.opcode.is_control:
        imm0 = instr.imm0 & _IMM0_MASK  # two's complement 11-bit offset
        return CONTROL_LAYOUT.pack(
            opcode=int(instr.opcode), imm0=imm0, imm1=instr.imm1
        )
    # SRC2 has no dedicated index field: MAD stores its index in SRC1's slot
    # (the paper's "SRC1# and SRC2# point to the same register index"); MAC's
    # accumulator is the destination register, so it reuses DST#.
    src1_idx = instr.src1.index if instr.src1.space.reg_count else 0
    if instr.opcode is Opcode.MAD and instr.src2.space.reg_count:
        if instr.src1.space.reg_count and instr.src1.index != instr.src2.index:
            raise IllegalInstruction("MAD requires SRC1# == SRC2#")
        src1_idx = instr.src2.index
    return DATA_LAYOUT.pack(
        opcode=int(instr.opcode),
        dst_space=int(instr.dst.space),
        src0_space=int(instr.src0.space),
        src1_space=int(instr.src1.space),
        src2_space=int(instr.src2.space),
        aam=int(instr.aam),
        relu=int(instr.relu),
        dst_idx=instr.dst.index if instr.dst.space.reg_count else 0,
        src0_idx=instr.src0.index if instr.src0.space.reg_count else 0,
        src1_idx=src1_idx,
    )


@lru_cache(maxsize=4096)
def decode(word: int) -> Instruction:
    """Decode a 32-bit word back to an :class:`Instruction`.

    Decoding is memoized on the 32-bit CRF word: a microkernel re-fetches
    the same handful of words once per column-command trigger, so the
    sequencer's fetch stage is a dictionary hit after the first decode.
    :class:`Instruction` is frozen, so the cached objects are safely
    shared between execution units.
    """
    opcode = Opcode((word >> 28) & 0xF)
    if opcode.is_control:
        fields = CONTROL_LAYOUT.unpack(word)
        imm0 = fields["imm0"]
        if imm0 & _IMM0_SIGN:  # sign-extend the 11-bit offset
            imm0 -= 1 << 11
        return Instruction(opcode, imm0=imm0, imm1=fields["imm1"])
    fields = DATA_LAYOUT.unpack(word)

    def operand(space_key: str, idx_key: Optional[str]) -> Operand:
        space = OperandSpace(fields[space_key])
        idx = fields[idx_key] if idx_key and space.reg_count else 0
        return Operand(space, idx)

    src2 = operand("src2_space", None)
    if src2.space.is_grf or src2.space is OperandSpace.SRF_A:
        # SRC2 shares SRC1's index field (MAD) or DST's (MAC).
        idx_field = "dst_idx" if opcode is Opcode.MAC else "src1_idx"
        src2 = Operand(src2.space, fields[idx_field])
    return Instruction(
        opcode,
        dst=operand("dst_space", "dst_idx"),
        src0=operand("src0_space", "src0_idx"),
        src1=operand("src1_space", "src1_idx"),
        src2=src2,
        aam=bool(fields["aam"]),
        relu=bool(fields["relu"]),
    )


# -- constructors --------------------------------------------------------------


def nop(count: int = 1) -> Instruction:
    """A NOP consuming ``count`` column-command triggers (multi-cycle NOP)."""
    return Instruction(Opcode.NOP, imm0=count)


def jump(offset: int, iterations: int) -> Instruction:
    """Zero-cycle JUMP: taken ``iterations`` times, then falls through.

    ``offset`` is relative to the JUMP's own CRF slot (-1 loops back to the
    immediately preceding instruction, as in the GEMV microkernel of Fig. 7).
    """
    return Instruction(Opcode.JUMP, imm0=offset, imm1=iterations)


def exit_() -> Instruction:
    """Terminate the microkernel."""
    return Instruction(Opcode.EXIT)


def mov(dst: Operand, src: Operand, aam: bool = False, relu: bool = False) -> Instruction:
    """MOV: data movement, optionally applying ReLU (the R flag)."""
    return Instruction(Opcode.MOV, dst=dst, src0=src, aam=aam, relu=relu)


def fill(dst: Operand, src: Operand, aam: bool = False) -> Instruction:
    """FILL: bulk load from a bank into a GRF register."""
    return Instruction(Opcode.FILL, dst=dst, src0=src, aam=aam)


def add(dst: Operand, src0: Operand, src1: Operand, aam: bool = False) -> Instruction:
    """ADD: lane-wise FP16 addition."""
    return Instruction(Opcode.ADD, dst=dst, src0=src0, src1=src1, aam=aam)


def mul(dst: Operand, src0: Operand, src1: Operand, aam: bool = False) -> Instruction:
    """MUL: lane-wise FP16 multiplication."""
    return Instruction(Opcode.MUL, dst=dst, src0=src0, src1=src1, aam=aam)


def mac(dst: Operand, src0: Operand, src1: Operand, aam: bool = False) -> Instruction:
    """MAC: ``dst += src0 * src1`` (src2 implicitly equals dst)."""
    return Instruction(Opcode.MAC, dst=dst, src0=src0, src1=src1, src2=dst, aam=aam)


def mad(
    dst: Operand,
    src0: Operand,
    src1: Operand,
    src2: Operand,
    aam: bool = False,
) -> Instruction:
    """MAD: ``dst = src0 * src1 + src2``."""
    return Instruction(Opcode.MAD, dst=dst, src0=src0, src1=src1, src2=src2, aam=aam)


# -- Table II enumeration --------------------------------------------------------


def _spaces(*names: str) -> List[OperandSpace]:
    return [OperandSpace[name] for name in names]


def legal_compute_combinations() -> List[Tuple[Opcode, OperandSpace, OperandSpace, OperandSpace]]:
    """Enumerate the legal (opcode, src0, src1, dst) compute combinations.

    Table II reports 114 compute combinations (MUL 32, ADD 40, MAC 14,
    MAD 28); our validity predicate is reconstructed from the table's operand
    lists, so the enumeration reproduces the *order* of that count.  The
    per-opcode numbers are reported by ``benchmarks/bench_table2_isa.py``
    next to the paper's.
    """
    grf = _spaces("GRF_A", "GRF_B")
    bank = _spaces("EVEN_BANK", "ODD_BANK")
    combos: List[Tuple[Opcode, OperandSpace, OperandSpace, OperandSpace]] = []
    for op in (Opcode.MUL, Opcode.ADD, Opcode.MAC, Opcode.MAD):
        src0_opts = grf + bank + (_spaces("SRF_A") if op is Opcode.ADD else [])
        src1_opts = grf + bank
        if op in (Opcode.MUL, Opcode.MAC, Opcode.MAD):
            src1_opts = src1_opts + _spaces("SRF_M")
        if op is Opcode.ADD:
            src1_opts = src1_opts + _spaces("SRF_A")
        dst_opts = _spaces("GRF_B") if op is Opcode.MAC else grf
        for s0 in src0_opts:
            for s1 in src1_opts:
                for d in dst_opts:
                    combos.append((op, s0, s1, d))
    return combos


def legal_move_combinations() -> List[Tuple[OperandSpace, OperandSpace, bool]]:
    """Enumerate legal (src, dst, relu) data-movement combinations.

    Table II reports 24 ways of data movement for MOV(/ReLU).
    """
    grf = _spaces("GRF_A", "GRF_B")
    bank = _spaces("EVEN_BANK", "ODD_BANK")
    srf = _spaces("SRF_M", "SRF_A")
    combos: List[Tuple[OperandSpace, OperandSpace, bool]] = []
    for relu in (False, True):
        for src in grf + bank + srf:
            for dst in grf:
                combos.append((src, dst, relu))
        for src in grf:
            for dst in bank:
                combos.append((src, dst, relu))
    return combos
