"""PIM operation modes and the PIM_CONF reserved memory map (Section III-B).

The device supports three modes:

* **SB** (single bank) — standard DRAM behaviour; a command targets the one
  bank addressed by BA/BG.
* **AB** (all bank) — BA/BG are ignored; the same row/column of *all* banks
  is accessed lock-step by a single command.
* **AB-PIM** — like AB, but a column command to a non-register address
  triggers execution of the PIM instruction at the PPC.

Mode transitions deliberately avoid MRS commands (privileged) and instead
use standard command sequences to reserved addresses:

* enter AB: ``ACT`` then ``PRE`` to the ABMR row (all banks must be idle
  afterwards, i.e. the host precharges everything first);
* exit AB: ``ACT`` then ``PRE`` to the SBMR row;
* enter/exit AB-PIM: column ``WR`` of 1/0 to the PIM_OP_MODE register in the
  configuration row.

The reserved rows at the top of the address space (the grey region of
Fig. 3) also map the CRF, GRF and SRF register files so the host programs
them with plain WR commands.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["PimMode", "PimMemoryMap", "ModeController"]


class PimMode(enum.Enum):
    """The device's operation mode (Fig. 3)."""
    SB = "single-bank"
    AB = "all-bank"
    AB_PIM = "all-bank-pim"


@dataclass(frozen=True)
class PimMemoryMap:
    """Reserved-row assignments within each bank's row address space.

    The PIM device driver (Section V-A) keeps this region out of the
    allocatable pool.  Offsets are from the top row.
    """

    num_rows: int

    RESERVED_ROWS = 6

    @property
    def abmr_row(self) -> int:
        """ACT+PRE here enters AB mode."""
        return self.num_rows - 1

    @property
    def sbmr_row(self) -> int:
        """ACT+PRE here returns to SB mode."""
        return self.num_rows - 2

    @property
    def conf_row(self) -> int:
        """Configuration registers; col 0 is PIM_OP_MODE."""
        return self.num_rows - 3

    @property
    def crf_row(self) -> int:
        """Instruction buffer; column c programs CRF entries 8c..8c+7."""
        return self.num_rows - 4

    @property
    def grf_row(self) -> int:
        """Vector registers; cols 0-7 -> GRF_A, 8-15 -> GRF_B."""
        return self.num_rows - 5

    @property
    def srf_row(self) -> int:
        """Scalar registers; col 0 -> SRF_M, col 1 -> SRF_A."""
        return self.num_rows - 6

    PIM_OP_MODE_COL = 0

    @property
    def first_reserved_row(self) -> int:
        return self.num_rows - self.RESERVED_ROWS

    def is_reserved(self, row: int) -> bool:
        """Whether ``row`` lies in the reserved PIM_CONF region."""
        return row >= self.first_reserved_row

    def is_register_row(self, row: int) -> bool:
        """Rows whose column accesses are register operations."""
        return row in (self.conf_row, self.crf_row, self.grf_row, self.srf_row)


class ModeController:
    """The per-pseudo-channel mode FSM.

    It observes the standard command stream (it adds *no* new commands or
    pins, the paper's compatibility requirement) and flips modes on the
    ACT/PRE sequences and PIM_OP_MODE writes described above.
    """

    def __init__(self, memory_map: PimMemoryMap):
        self.map = memory_map
        self.mode = PimMode.SB
        # Row opened by the most recent ACT per bank is tracked by the banks
        # themselves; the FSM only needs the pending transition row.
        self._armed_row: int = -1
        self.transition_count = 0

    @property
    def all_bank(self) -> bool:
        return self.mode in (PimMode.AB, PimMode.AB_PIM)

    @property
    def pim_executing(self) -> bool:
        return self.mode is PimMode.AB_PIM

    def observe_act(self, row: int) -> None:
        """Track an ACT: arms a transition when it hits ABMR/SBMR."""
        if row in (self.map.abmr_row, self.map.sbmr_row):
            self._armed_row = row
        else:
            self._armed_row = -1

    def observe_pre(self) -> bool:
        """Returns True when the PRE completes a mode transition."""
        if self._armed_row == self.map.abmr_row:
            self._armed_row = -1
            if self.mode is PimMode.SB:
                self.mode = PimMode.AB
                self.transition_count += 1
                return True
            return False
        if self._armed_row == self.map.sbmr_row:
            self._armed_row = -1
            if self.mode is not PimMode.SB:
                self.mode = PimMode.SB
                self.transition_count += 1
                return True
        return False

    def reset(self) -> None:
        """Force the FSM back to SB with no armed transition.

        Part of the channel-recovery sequence after a mid-kernel fault;
        the real driver achieves the same state with SBMR + PIM_OP_MODE=0
        writes, counted as one transition when a mode actually changed.
        """
        if self.mode is not PimMode.SB:
            self.mode = PimMode.SB
            self.transition_count += 1
        self._armed_row = -1

    def set_pim_op_mode(self, enable: bool) -> bool:
        """PIM_OP_MODE register write; returns True on a mode change."""
        if enable and self.mode is PimMode.AB:
            self.mode = PimMode.AB_PIM
            self.transition_count += 1
            return True
        if not enable and self.mode is PimMode.AB_PIM:
            self.mode = PimMode.AB
            self.transition_count += 1
            return True
        return False
