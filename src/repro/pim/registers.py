"""Register files of one PIM execution unit (Section IV-A, Table IV).

* **CRF** — command register file: 32 x 32-bit instruction buffer.
* **GRF** — general register file: 16 x 256-bit vector registers, evenly
  split into GRF_A and GRF_B (8 each) for the EVEN/ODD bank pair.
* **SRF** — scalar register file: 16 x 16-bit, split into SRF_M (multiply
  scalars) and SRF_A (add scalars), 8 each; a read broadcasts the scalar to
  all 16 SIMD lanes.

All register files are also memory-mapped (Section III-B: "PIM mode,
configuration, general, command scalar registers are mapped to specific
reserved memory addresses"), so each exposes 32-byte column accessors used
by the register-mapped read/write path in :mod:`repro.pim.device`.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .isa import CRF_ENTRIES, GRF_REGS, SRF_REGS, OperandSpace

__all__ = ["RegisterFiles", "StackedRegisterState", "LANES", "GRF_REG_BYTES"]

LANES = 16  # 16 FP16 lanes = 256-bit datapath
GRF_REG_BYTES = LANES * 2  # one GRF register is one 32-byte column


class RegisterFiles:
    """The CRF/GRF/SRF state of one PIM execution unit."""

    def __init__(self) -> None:
        self.crf: List[int] = [0] * CRF_ENTRIES
        self.grf_a = np.zeros((GRF_REGS, LANES), dtype=np.float16)
        self.grf_b = np.zeros((GRF_REGS, LANES), dtype=np.float16)
        self.srf_m = np.zeros(SRF_REGS, dtype=np.float16)
        self.srf_a = np.zeros(SRF_REGS, dtype=np.float16)

    # -- typed accessors ------------------------------------------------------

    def grf(self, space: OperandSpace) -> np.ndarray:
        """The GRF half selected by an operand space."""
        if space is OperandSpace.GRF_A:
            return self.grf_a
        if space is OperandSpace.GRF_B:
            return self.grf_b
        raise ValueError(f"{space} is not a GRF half")

    def srf(self, space: OperandSpace) -> np.ndarray:
        """The SRF half selected by an operand space."""
        if space is OperandSpace.SRF_M:
            return self.srf_m
        if space is OperandSpace.SRF_A:
            return self.srf_a
        raise ValueError(f"{space} is not an SRF half")

    def read_vector(self, space: OperandSpace, index: int) -> np.ndarray:
        """Read a 16-lane FP16 vector operand (SRF scalars broadcast)."""
        if space.is_grf:
            return self.grf(space)[index].copy()
        if space.is_srf:
            return np.full(LANES, self.srf(space)[index], dtype=np.float16)
        raise ValueError(f"cannot read vector from {space}")

    def write_vector(self, space: OperandSpace, index: int, value: np.ndarray) -> None:
        """Write a 16-lane vector into a GRF register."""
        if not space.is_grf:
            raise ValueError(f"cannot write vector to {space}")
        self.grf(space)[index] = np.asarray(value, dtype=np.float16)

    # -- fault injection ------------------------------------------------------

    def flip_bit(self, file: str, index: int, bit: int) -> None:
        """Flip one stored bit of a register word (fault injection).

        ``file`` names the register file (``"crf"``, ``"grf_a"``,
        ``"grf_b"``, ``"srf_m"``, ``"srf_a"``); ``index`` the entry and
        ``bit`` the bit within it (32 bits for a CRF word, 16 per FP16
        element times the lane count for a GRF register, 16 for an SRF
        scalar).
        """
        if file == "crf":
            if not 0 <= bit < 32:
                raise ValueError("CRF bit index out of range")
            self.crf[index] ^= 1 << bit
            return
        try:
            target = {
                "grf_a": self.grf_a,
                "grf_b": self.grf_b,
                "srf_m": self.srf_m,
                "srf_a": self.srf_a,
            }[file]
        except KeyError:
            raise ValueError(f"unknown register file {file!r}") from None
        entry = target[index : index + 1] if target.ndim == 1 else target[index]
        raw = entry.view(np.uint8)
        if not 0 <= bit < raw.size * 8:
            raise ValueError("register bit index out of range")
        raw[bit // 8] ^= 1 << (bit % 8)

    # -- memory-mapped column access (32 bytes per column) ----------------------

    def write_crf_column(self, col: int, data: np.ndarray) -> None:
        """One column write programs 8 consecutive 32-bit CRF entries."""
        words = np.ascontiguousarray(data, dtype=np.uint8).view("<u4")
        base = col * 8
        if base + 8 > CRF_ENTRIES:
            raise IndexError(f"CRF column {col} out of range")
        for i, word in enumerate(words):
            self.crf[base + i] = int(word)

    def read_crf_column(self, col: int) -> np.ndarray:
        """Read 8 CRF entries back as a 32-byte column."""
        base = col * 8
        if base + 8 > CRF_ENTRIES:
            raise IndexError(f"CRF column {col} out of range")
        words = np.array(self.crf[base : base + 8], dtype="<u4")
        return words.view(np.uint8).copy()

    def write_grf_column(self, col: int, data: np.ndarray) -> None:
        """Columns 0-7 map to GRF_A[0..7], 8-15 to GRF_B[0..7]."""
        target = self.grf_a if col < GRF_REGS else self.grf_b
        target[col % GRF_REGS] = (
            np.ascontiguousarray(data, dtype=np.uint8).view(np.float16)
        )

    def read_grf_column(self, col: int) -> np.ndarray:
        """Read one GRF register as raw column bytes."""
        source = self.grf_a if col < GRF_REGS else self.grf_b
        return source[col % GRF_REGS].view(np.uint8).copy()

    def write_srf_column(self, col: int, data: np.ndarray) -> None:
        """Column 0 maps to SRF_M, column 1 to SRF_A (16 bytes each used)."""
        values = np.ascontiguousarray(data, dtype=np.uint8).view(np.float16)[:SRF_REGS]
        if col == 0:
            self.srf_m[:] = values
        elif col == 1:
            self.srf_a[:] = values
        else:
            raise IndexError(f"SRF column {col} out of range")

    def read_srf_column(self, col: int) -> np.ndarray:
        """Read one SRF half as raw column bytes (zero-padded)."""
        if col == 0:
            half = self.srf_m
        elif col == 1:
            half = self.srf_a
        else:
            raise IndexError(f"SRF column {col} out of range")
        out = np.zeros(GRF_REG_BYTES, dtype=np.uint8)
        out[: SRF_REGS * 2] = half.view(np.uint8)
        return out


class StackedRegisterState:
    """Contiguous ``(units, ...)`` GRF/SRF backing for lock-stepped units.

    The lock-step batch path executes one instruction as a stacked
    ``(units x 16)``-lane numpy operation, which needs every unit's
    register halves to live in one contiguous array.  :meth:`adopt`
    rebinds a unit's :class:`RegisterFiles` arrays to row views of the
    stacked storage — all per-unit accessors (column writes, fault
    injection, scalar execution) keep working unchanged on the views,
    while the batch executor slices all units at once.

    The CRF is *not* stacked: it stays a per-unit list so units can
    diverge (single-bank programming, fault injection), which the batch
    path detects per fetched word.
    """

    def __init__(self, num_units: int):
        self.num_units = num_units
        self.grf_a = np.zeros((num_units, GRF_REGS, LANES), dtype=np.float16)
        self.grf_b = np.zeros((num_units, GRF_REGS, LANES), dtype=np.float16)
        self.srf_m = np.zeros((num_units, SRF_REGS), dtype=np.float16)
        self.srf_a = np.zeros((num_units, SRF_REGS), dtype=np.float16)

    def adopt(self, unit_index: int, regs: RegisterFiles) -> None:
        """Rebind ``regs``'s GRF/SRF arrays to views of the stacked state."""
        for name in ("grf_a", "grf_b", "srf_m", "srf_a"):
            view = getattr(self, name)[unit_index]
            view[...] = getattr(regs, name)
            setattr(regs, name, view)

    def grf(self, space: OperandSpace) -> np.ndarray:
        """The stacked ``(units, regs, lanes)`` GRF half for ``space``."""
        if space is OperandSpace.GRF_A:
            return self.grf_a
        if space is OperandSpace.GRF_B:
            return self.grf_b
        raise ValueError(f"{space} is not a GRF half")

    def srf(self, space: OperandSpace) -> np.ndarray:
        """The stacked ``(units, regs)`` SRF half for ``space``."""
        if space is OperandSpace.SRF_M:
            return self.srf_m
        if space is OperandSpace.SRF_A:
            return self.srf_a
        raise ValueError(f"{space} is not an SRF half")
