"""The PIM-HBM device: pseudo-channels with PIM execution units.

:class:`PimPseudoChannel` extends the standard :class:`PseudoChannel` with

* the SB / AB / AB-PIM mode FSM driven by standard command sequences,
* all-bank broadcast of ACT/PRE/column commands in AB modes,
* register-mapped access to CRF/GRF/SRF and PIM_OP_MODE, and
* column-command-triggered PIM instruction execution in AB-PIM mode.

Crucially, the *interface* is unchanged — the same :class:`Command` objects
a JEDEC controller emits — which is the paper's drop-in-replacement claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..dram.bank import BankConfig
from ..dram.commands import Command, CommandType
from ..dram.device import DeviceConfig, HbmDevice
from ..dram.pseudochannel import BANKS_PER_PCH, PseudoChannel
from ..dram.timing import TimingParams
from .exec_unit import ColumnTrigger, PimExecutionUnit
from .lockstep import LockstepGroup
from .modes import ModeController, PimMemoryMap, PimMode

__all__ = ["PimPseudoChannel", "PimHbmDevice", "UNITS_PER_PCH"]

UNITS_PER_PCH = BANKS_PER_PCH // 2  # one unit per bank pair (Table V: 8)


class PimPseudoChannel(PseudoChannel):
    """A pseudo-channel of the PIM-HBM die."""

    def __init__(
        self,
        timing: TimingParams,
        bank_config: Optional[BankConfig] = None,
        bank_cls=None,
        lane_format=None,
    ):
        from ..dram.bank import Bank
        from ..common.fp16 import FP16

        super().__init__(timing, bank_config, bank_cls=bank_cls or Bank)
        self.units: List[PimExecutionUnit] = [
            PimExecutionUnit(
                u, self.banks[2 * u], self.banks[2 * u + 1],
                lane_format=lane_format or FP16,
            )
            for u in range(UNITS_PER_PCH)
        ]
        # The batched lock-step executor over all units; adopts the units'
        # GRF/SRF into one stacked array, so build it before any register
        # state is written.
        self.lockstep = LockstepGroup(self.units)
        self.memory_map = PimMemoryMap(self.bank_config.num_rows)
        self.mode_ctrl = ModeController(self.memory_map)
        self.pim_op_mode = 0
        # Column commands executed in AB-PIM mode never drive the off-chip
        # I/O PHY; the energy model keys off this counter.
        self.pim_triggered_columns = 0
        self.ab_broadcast_columns = 0
        # Observability hook (repro.obs): a Tracer records mode-FSM
        # transitions as instant events; None costs one attribute test.
        self.tracer = None
        self.channel_id = 0

    @property
    def mode(self) -> PimMode:
        return self.mode_ctrl.mode

    def hard_reset(self, cycle: int) -> None:
        """Channel recovery: close banks, force SB mode, stop the units.

        Register contents (CRF/GRF/SRF) are deliberately preserved — the
        runtime's microkernel cache tracks what is loaded, and a retried
        kernel reprograms whatever it needs before executing.
        """
        super().hard_reset(cycle)
        self.mode_ctrl.reset()
        self.pim_op_mode = 0
        # Deferred triggers of an interrupted AB-PIM window are post-error
        # garbage: discard them rather than replay into the recovered state.
        self.lockstep.abort_pending()
        self.lockstep.stop_all()

    # -- timing: AB modes serialise columns at tCCD_L ---------------------------

    def _col_bus_bound(self, cmd: Command) -> int:
        bound = super()._col_bus_bound(cmd)
        if self.mode_ctrl.all_bank and self._last_col_cycle is not None:
            # Every bank group participates, so the same-group delay governs.
            bound = max(bound, self._last_col_cycle + self.timing.tccd_l)
        return bound

    def earliest_issue(self, cmd: Command) -> int:
        """Earliest legal cycle; all-bank modes bound over every bank."""
        if not self.mode_ctrl.all_bank:
            return super().earliest_issue(cmd)
        if cmd.cmd is CommandType.ACT:
            bank_bound = max(bank.earliest_act() for bank in self.banks)
            return max(bank_bound, self._act_bus_bound(cmd))
        if cmd.cmd in (CommandType.PRE, CommandType.PREA):
            return max(bank.earliest_pre() for bank in self.banks)
        if cmd.cmd.is_column:
            is_write = cmd.cmd is CommandType.WR
            bank_bound = max(bank.earliest_col(is_write) for bank in self.banks)
            return max(bank_bound, self._col_bus_bound(cmd))
        return super().earliest_issue(cmd)

    # -- command execution --------------------------------------------------------

    def issue(self, cmd: Command, cycle: int) -> Optional[np.ndarray]:
        """Dispatch by mode: SB delegates, AB modes broadcast/trigger."""
        if self.tracer is None:
            if not self.mode_ctrl.all_bank:
                return self._issue_single_bank(cmd, cycle)
            return self._issue_all_bank(cmd, cycle)
        before = self.mode_ctrl.mode
        if not self.mode_ctrl.all_bank:
            result = self._issue_single_bank(cmd, cycle)
        else:
            result = self._issue_all_bank(cmd, cycle)
        after = self.mode_ctrl.mode
        if after is not before:
            self.tracer.event(
                f"mode:{after.value}",
                at_ns=self.tracer.cycles_ns(cycle),
                category="mode",
                channel=self.channel_id,
                cycle=cycle,
            )
        return result

    def _issue_single_bank(self, cmd: Command, cycle: int) -> Optional[np.ndarray]:
        if cmd.cmd is CommandType.ACT:
            self.mode_ctrl.observe_act(cmd.row)
            return super().issue(cmd, cycle)
        if cmd.cmd in (CommandType.PRE, CommandType.PREA):
            result = super().issue(cmd, cycle)
            self.mode_ctrl.observe_pre()
            if self.mode_ctrl.all_bank and not self.all_banks_idle:
                raise RuntimeError(
                    "entered AB mode with open rows; precharge all banks first"
                )
            return result
        if cmd.cmd.is_column and self.memory_map.is_register_row(cmd.row):
            # Register access in SB mode targets the unit of the addressed
            # bank pair (used e.g. to read one unit's GRF_B partial sums).
            super().issue(self._timing_shadow(cmd), cycle)
            unit = self.units[cmd.bank_index // 2]
            return self._register_access(cmd, [unit])
        return super().issue(cmd, cycle)

    def _issue_all_bank(self, cmd: Command, cycle: int) -> Optional[np.ndarray]:
        bound = self.earliest_issue(cmd)
        if cycle < bound:
            from ..dram.bank import TimingViolation

            raise TimingViolation(f"{cmd!r} at {cycle} before bound {bound}")
        self.cmd_counts[cmd.cmd] += 1
        if cmd.cmd is CommandType.ACT:
            self.mode_ctrl.observe_act(cmd.row)
            for bank in self.banks:
                bank.activate(cmd.row, cycle)
            self._record_act(cmd.bg, cycle)
            return None
        if cmd.cmd in (CommandType.PRE, CommandType.PREA):
            for bank in self.banks:
                bank.precharge(cycle)
            self.mode_ctrl.observe_pre()
            return None
        if cmd.cmd.is_column:
            return self._all_bank_column(cmd, cycle)
        if cmd.cmd is CommandType.REF:
            for bank in self.banks:
                bank.next_act = max(bank.next_act, cycle + self.timing.trfc)
            return None
        raise ValueError(f"unhandled command {cmd.cmd}")

    def _all_bank_column(self, cmd: Command, cycle: int) -> Optional[np.ndarray]:
        is_write = cmd.cmd is CommandType.WR
        if self.memory_map.is_register_row(cmd.row):
            # Register rows are decoded ahead of the banks: broadcast writes
            # program every unit identically; reads return the addressed
            # unit's copy.  Bank state is untouched (no row needs to be open
            # in a register row).
            self._record_col(cmd.bg, cycle, is_write)
            return self._register_access(cmd, self.units)
        for bank in self.banks:
            if self.mode_ctrl.pim_executing:
                bank.touch_column(cmd.row, cycle, is_write)
            elif is_write:
                bank.write(cmd.row, cmd.col, cmd.data, cycle)
            else:
                bank.read(cmd.row, cmd.col, cycle)
        self._record_col(cmd.bg, cycle, is_write)
        if self.mode_ctrl.pim_executing:
            self.pim_triggered_columns += 1
            trig = ColumnTrigger(
                is_write=is_write, row=cmd.row, col=cmd.col, host_data=cmd.data
            )
            self.lockstep.trigger_all(trig)
            # AB-PIM column commands do not drive data to the external I/O.
            return None
        self.ab_broadcast_columns += 1
        if is_write:
            return None
        # AB (non-PIM) read: the addressed bank's data reaches the I/O.
        return self.banks[cmd.bank_index].peek(cmd.row, cmd.col)

    # -- register-mapped access -----------------------------------------------------

    def _timing_shadow(self, cmd: Command) -> Command:
        """A copy of ``cmd`` with inert data for the bank-timing path."""
        if cmd.cmd is CommandType.WR:
            return Command(
                cmd.cmd, cmd.bg, cmd.ba, cmd.row, cmd.col,
                data=np.zeros(self.bank_config.col_bytes, dtype=np.uint8),
            )
        return cmd

    def _register_access(
        self, cmd: Command, units: List[PimExecutionUnit]
    ) -> Optional[np.ndarray]:
        m = self.memory_map
        is_write = cmd.cmd is CommandType.WR
        # Register-mapped accesses observe (or mutate) unit state, so any
        # trace-deferred triggers must land first (fused executor hook).
        self.lockstep.flush_pending()
        if cmd.row == m.conf_row:
            if cmd.col == m.PIM_OP_MODE_COL:
                if is_write:
                    self._set_pim_op_mode(int(cmd.data[0]) & 1)
                    return None
                out = np.zeros(self.bank_config.col_bytes, dtype=np.uint8)
                out[0] = self.pim_op_mode
                return out
            raise ValueError(f"unknown configuration register column {cmd.col}")
        first = units[0] if units else self.units[cmd.bank_index // 2]
        if cmd.row == m.crf_row:
            if is_write:
                for unit in units:
                    unit.regs.write_crf_column(cmd.col, cmd.data)
                return None
            return first.regs.read_crf_column(cmd.col)
        if cmd.row == m.grf_row:
            if is_write:
                for unit in units:
                    unit.regs.write_grf_column(cmd.col, cmd.data)
                return None
            return first.regs.read_grf_column(cmd.col)
        if cmd.row == m.srf_row:
            if is_write:
                for unit in units:
                    unit.regs.write_srf_column(cmd.col, cmd.data)
                return None
            return first.regs.read_srf_column(cmd.col)
        raise ValueError(f"row {cmd.row} is not a register row")

    def _set_pim_op_mode(self, value: int) -> None:
        self.pim_op_mode = value
        changed = self.mode_ctrl.set_pim_op_mode(bool(value))
        if changed and self.mode_ctrl.pim_executing:
            self.lockstep.start_all()
        elif changed:
            self.lockstep.stop_all()


class PimHbmDevice(HbmDevice):
    """A PIM-HBM stack: standard HBM2 interface, PIM units inside."""

    def __init__(self, config: Optional[DeviceConfig] = None):
        from ..dram.device import _bank_cls

        super().__init__(
            config,
            pch_factory=lambda cfg: PimPseudoChannel(
                cfg.timing, cfg.bank_config, bank_cls=_bank_cls(cfg)
            ),
        )

    def pch(self, index: int) -> PimPseudoChannel:
        """The PIM pseudo-channel at ``index``."""
        channel = self.pchs[index]
        assert isinstance(channel, PimPseudoChannel)
        return channel

    @property
    def memory_map(self) -> PimMemoryMap:
        return self.pch(0).memory_map

    @property
    def compute_bandwidth_bytes_per_sec(self) -> float:
        """Peak on-chip compute bandwidth (Table V): 8 operating banks per
        pCH, one 32 B column each, every tCCD_L."""
        t = self.config.timing
        per_pch = (
            UNITS_PER_PCH
            * self.config.bank_config.col_bytes
            / (t.tccd_l * t.tck_ns * 1e-9)
        )
        return per_pch * self.config.num_pchs
