"""The PIM execution unit (Section IV).

One unit sits at the I/O boundary of a bank *pair* (EVEN_BANK / ODD_BANK)
and contains a 16-wide FP16 SIMD FPU, the CRF/GRF/SRF register files and a
small controller.  It is entirely slaved to the DRAM command stream: in
AB-PIM mode, every column RD/WR command to a non-register address triggers
exactly one PIM instruction with deterministic latency.

The pipeline (Section IV-B) is 5 stages — fetch/decode, bank read, MULT,
ADD, write-back — but because execution is lock-stepped to the column
command cadence (one instruction per tCCD_L), the architectural state
update can be modelled atomically per trigger; the pipeline depth only
contributes a fixed fill/drain latency accounted in the performance model.

Zero-cycle JUMP and multi-cycle NOP are implemented exactly as described:
JUMP is resolved at fetch (it never consumes a column command) with a
pre-programmed iteration count; NOP consumes ``imm0`` triggers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..common.fp16 import (
    FP16,
    FloatFormat,
    format_vec_add,
    format_vec_mac,
    format_vec_mul,
    vec_relu,
)
from ..dram.bank import Bank
from ..errors import PimProgramError
from .isa import CRF_ENTRIES, GRF_REGS, Instruction, Opcode, Operand, OperandSpace, decode
from .registers import GRF_REG_BYTES, LANES, RegisterFiles

__all__ = ["ColumnTrigger", "PimExecutionUnit", "PimProgramError", "UnitStats"]


@dataclass(frozen=True)
class ColumnTrigger:
    """The DRAM column command that triggers one PIM instruction.

    ``row``/``col`` form the implicit bank address of BANK operands and the
    AAM register index; ``host_data`` is the 32-byte WR burst (None for RD).
    """

    is_write: bool
    row: int
    col: int
    host_data: Optional[np.ndarray] = None

    def host_fp16(self) -> np.ndarray:
        """The WR burst as 16 FP16 lanes, built once per broadcast.

        Every unit of a pseudo-channel reads the same HOST operand from
        the same trigger, so the FP16 view is cached on the trigger
        instead of re-deriving (and copying) it per unit.  Callers treat
        the returned array as read-only.
        """
        cached = self.__dict__.get("_host_fp16")
        if cached is None:
            cached = np.ascontiguousarray(
                self.host_data, dtype=np.uint8
            ).view(np.float16)
            object.__setattr__(self, "_host_fp16", cached)
        return cached


@dataclass
class UnitStats:
    """Per-unit execution counters (feed the energy model)."""

    triggers: int = 0
    instructions: int = 0
    flops: int = 0
    bank_reads: int = 0
    bank_writes: int = 0
    ignored_after_exit: int = 0


class PimExecutionUnit:
    """One PIM execution unit shared by an even/odd bank pair."""

    def __init__(
        self,
        unit_id: int,
        even_bank: Bank,
        odd_bank: Bank,
        lane_format: FloatFormat = FP16,
    ):
        self.unit_id = unit_id
        self.even_bank = even_bank
        self.odd_bank = odd_bank
        # The fabricated unit computes FP16; BF16 is the Table I alternative
        # the paper weighed (and rejected for software-ecosystem reasons).
        # Lanes stay 16-bit storage either way; non-FP16 formats run through
        # the bit-accurate softfloat.
        self.lane_format = lane_format
        self.regs = RegisterFiles()
        self.ppc = 0
        self.exited = True  # not started until AB-PIM entry
        self._nop_remaining = 0
        # Remaining taken-count per JUMP slot; absent means "not yet entered",
        # so re-entering an exhausted loop re-arms it (needed for nesting).
        self._jump_state: Dict[int, int] = {}
        self.stats = UnitStats()

    # -- control ---------------------------------------------------------------

    def start(self) -> None:
        """Reset the sequencer; called on AB-PIM mode entry (PPC <- 0)."""
        self.ppc = 0
        self.exited = False
        self._nop_remaining = 0
        self._jump_state.clear()
        self._resolve_control()

    def stop(self) -> None:
        """Called on AB-PIM mode exit."""
        self.exited = True

    def sequencer_state(self) -> tuple:
        """The architectural sequencer state as a hashable snapshot.

        ``(ppc, exited, nop_remaining, sorted jump-slot items)`` — the
        exact state the lock-step and trace-compiled executors key their
        uniformity checks and compiled-trace cache entries on.
        """
        return (
            self.ppc,
            self.exited,
            self._nop_remaining,
            tuple(sorted(self._jump_state.items())),
        )

    def install_sequencer_state(
        self, ppc: int, exited: bool, nop_remaining: int, jump_items
    ) -> None:
        """Install a resolved sequencer state (compiled-trace replay)."""
        self.ppc = ppc
        self.exited = exited
        self._nop_remaining = nop_remaining
        self._jump_state = dict(jump_items)

    def _fetch(self) -> Instruction:
        if not 0 <= self.ppc < CRF_ENTRIES:
            raise PimProgramError(f"PPC {self.ppc} out of CRF range")
        return decode(self.regs.crf[self.ppc])

    def _resolve_control(self) -> None:
        """Resolve zero-cycle JUMPs (and EXIT) at the fetch stage."""
        steps = 0
        while not self.exited:
            steps += 1
            if steps > 1_000_000:
                raise PimProgramError("control-flow resolution did not converge")
            instr = self._fetch()
            if instr.opcode is Opcode.JUMP:
                remaining = self._jump_state.get(self.ppc)
                if remaining is None:
                    remaining = instr.imm1
                if remaining > 0:
                    self._jump_state[self.ppc] = remaining - 1
                    self.ppc += instr.imm0
                else:
                    # Exhausted: fall through and re-arm for a later re-entry.
                    self._jump_state.pop(self.ppc, None)
                    self.ppc += 1
                continue
            if instr.opcode is Opcode.EXIT:
                self.exited = True
                continue
            if instr.opcode is Opcode.NOP and self._nop_remaining == 0:
                self._nop_remaining = max(1, instr.imm0)
            return

    # -- execution ------------------------------------------------------------

    def trigger(self, trig: ColumnTrigger) -> None:
        """Execute one PIM instruction in response to a column command."""
        self.stats.triggers += 1
        if self.exited:
            # The microkernel has finished; surplus commands are ignored by
            # the sequencer (the bank access itself still happened).
            self.stats.ignored_after_exit += 1
            return
        instr = self._fetch()
        if instr.opcode is Opcode.NOP:
            self._nop_remaining -= 1
            self.stats.instructions += 1
            if self._nop_remaining <= 0:
                self.ppc += 1
                self._resolve_control()
            return
        self._execute(instr, trig)
        self.stats.instructions += 1
        self.ppc += 1
        self._resolve_control()

    def _execute(self, instr: Instruction, trig: ColumnTrigger) -> None:
        op = instr.opcode
        if op is Opcode.MOV or op is Opcode.FILL:
            value = self._read_operand(instr.src0, instr, trig)
            if instr.relu:
                value = vec_relu(value)
            self._write_dst(instr.dst, instr, trig, value)
            return
        a = self._read_operand(instr.src0, instr, trig)
        b = self._read_operand(instr.src1, instr, trig)
        fmt = self.lane_format
        if op is Opcode.MUL:
            result = format_vec_mul(fmt, a, b)
            self.stats.flops += LANES
        elif op is Opcode.ADD:
            result = format_vec_add(fmt, a, b)
            self.stats.flops += LANES
        elif op is Opcode.MAC:
            # The accumulator is the destination register (Section III-C).
            acc = self._read_operand(instr.dst, instr, trig)
            result = format_vec_mac(fmt, acc, a, b)
            self.stats.flops += 2 * LANES
        elif op is Opcode.MAD:
            addend = self._read_operand(instr.src2, instr, trig)
            result = format_vec_add(fmt, format_vec_mul(fmt, a, b), addend)
            self.stats.flops += 2 * LANES
        else:
            raise PimProgramError(f"cannot execute {op}")
        self._write_dst(instr.dst, instr, trig, result)

    # -- operand resolution ------------------------------------------------------

    def _aam_index(self, trig: ColumnTrigger) -> int:
        """Address-aligned-mode register index from the column address.

        The low 3 column-address bits index the 8 registers of a GRF/SRF
        half — the "sub-fields of the row and column addresses" of
        Section IV-C.
        """
        return trig.col % GRF_REGS

    def _reg_index(self, operand: Operand, instr: Instruction, trig: ColumnTrigger) -> int:
        return self._aam_index(trig) if instr.aam else operand.index

    def _bank(self, space: OperandSpace) -> Bank:
        return self.even_bank if space is OperandSpace.EVEN_BANK else self.odd_bank

    def _read_operand(
        self, operand: Operand, instr: Instruction, trig: ColumnTrigger
    ) -> np.ndarray:
        space = operand.space
        if space.is_bank:
            if trig.is_write:
                raise PimProgramError(
                    "bank-sourced operand requires a column RD trigger"
                )
            self.stats.bank_reads += 1
            # peek returns a fresh copy, so the view needs no further copy.
            raw = self._bank(space).peek(trig.row, trig.col)
            return raw.view(np.float16)
        if space is OperandSpace.HOST:
            if not trig.is_write or trig.host_data is None:
                raise PimProgramError("HOST operand requires a column WR trigger")
            return trig.host_fp16()
        if space.is_grf or space.is_srf:
            return self.regs.read_vector(space, self._reg_index(operand, instr, trig))
        raise PimProgramError(f"cannot read operand from {space}")

    def _write_dst(
        self,
        operand: Operand,
        instr: Instruction,
        trig: ColumnTrigger,
        value: np.ndarray,
    ) -> None:
        space = operand.space
        if space.is_grf:
            self.regs.write_vector(space, self._reg_index(operand, instr, trig), value)
            return
        if space.is_bank:
            if not trig.is_write:
                raise PimProgramError(
                    "bank-destination requires a column WR trigger (write drivers)"
                )
            self.stats.bank_writes += 1
            raw = np.asarray(value, dtype=np.float16).view(np.uint8)
            if raw.size != GRF_REG_BYTES:
                raise PimProgramError("bank write must be one full column")
            self._bank(space).poke(trig.row, trig.col, raw)
            return
        raise PimProgramError(f"cannot write result to {space}")
