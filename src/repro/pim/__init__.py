"""The paper's core contribution: PIM-HBM ISA, execution unit and device."""

from .assembler import AssemblyError, assemble, assemble_words, disassemble
from .device import PimHbmDevice, PimPseudoChannel, UNITS_PER_PCH
from .exec_unit import ColumnTrigger, PimExecutionUnit, PimProgramError, UnitStats
from .isa import (
    CRF_ENTRIES,
    GRF_REGS,
    SRF_REGS,
    Instruction,
    Opcode,
    Operand,
    OperandSpace,
    decode,
    encode,
    legal_compute_combinations,
    legal_move_combinations,
)
from .modes import ModeController, PimMemoryMap, PimMode
from .pipeline import STAGES, PipelineModel, stages_for
from .registers import GRF_REG_BYTES, LANES, RegisterFiles

__all__ = [
    "AssemblyError",
    "assemble",
    "assemble_words",
    "disassemble",
    "PimHbmDevice",
    "PimPseudoChannel",
    "UNITS_PER_PCH",
    "ColumnTrigger",
    "PimExecutionUnit",
    "PimProgramError",
    "UnitStats",
    "CRF_ENTRIES",
    "GRF_REGS",
    "SRF_REGS",
    "Instruction",
    "Opcode",
    "Operand",
    "OperandSpace",
    "decode",
    "encode",
    "legal_compute_combinations",
    "legal_move_combinations",
    "STAGES",
    "PipelineModel",
    "stages_for",
    "ModeController",
    "PimMemoryMap",
    "PimMode",
    "RegisterFiles",
    "GRF_REG_BYTES",
    "LANES",
]
