"""Lock-step batched execution across the units of one pseudo-channel.

The paper's execution model is lock-step by construction: in AB-PIM mode
every column command is broadcast, so all 8 units of a pseudo-channel fetch
the *same* CRF word and execute the same instruction — only their data
(GRF/SRF contents and bank columns) differs.  :class:`LockstepGroup`
exploits that: fetch, decode and control-flow resolution happen **once per
column command**, and the FP16 arithmetic runs as one stacked
``(units x 16)``-lane numpy operation over a contiguous register-file view
(:class:`~repro.pim.registers.StackedRegisterState`).

The per-unit scalar path (:meth:`PimExecutionUnit.trigger`) is retained in
full, for three reasons:

* it is the **differential oracle** the batch path is property-tested
  against (byte-identical register/bank state, identical ``UnitStats``);
* non-FP16 lane formats (the Table I alternatives) run through the
  bit-accurate softfloat, which is inherently lane-serial; and
* any irregularity — units whose sequencer state or CRF contents have
  diverged (single-bank programming, fault injection), a failed bank, a
  trigger kind the instruction would reject — falls back to the scalar
  loop, which reproduces the historical behaviour (including the exact
  exception and partial-state semantics) bit for bit.

Divergence detection is per fetched word: before executing, the group
verifies every unit holds the leader's sequencer state and the leader's
CRF word at each program counter it visits this trigger.  That makes the
batch path safe against *any* per-unit CRF mutation — broadcast writes
keep units identical, single-bank writes and injected bit flips are caught
at the next fetch.

The only observable difference of the batch path is exception *ordering*:
when a mid-execution error is raised (e.g. an uncorrectable ECC word), the
scalar loop leaves earlier units fully executed and later units untouched,
while the batch path leaves all units un-advanced.  Both states are
post-error garbage that the self-healing layer discards (the channel is
reset or quarantined); all pre-detectable errors fall back *before*
executing and so raise exactly as the scalar loop does.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..common.fp16 import FP16, vec_add, vec_mul, vec_relu
from .exec_unit import ColumnTrigger, PimExecutionUnit
from .isa import CRF_ENTRIES, GRF_REGS, Instruction, Opcode, Operand, OperandSpace, decode
from .registers import LANES, StackedRegisterState

__all__ = ["LockstepGroup"]


class LockstepGroup:
    """The lock-stepped execution units of one pseudo-channel."""

    def __init__(self, units: Sequence[PimExecutionUnit], enabled: bool = True):
        self.units: List[PimExecutionUnit] = list(units)
        #: Set False to force the per-unit scalar path
        #: (``SystemConfig(scalar_exec=True)`` does this device-wide).
        self.enabled = enabled
        self._fp16_ok = len(self.units) > 1 and all(
            u.lane_format is FP16 for u in self.units
        )
        self.stacked = StackedRegisterState(len(self.units))
        for i, unit in enumerate(self.units):
            self.stacked.adopt(i, unit.regs)
        # Observability counters: how many column commands ran batched vs
        # fell back to the per-unit loop.
        self.batched_triggers = 0
        self.scalar_fallbacks = 0

    # -- control -----------------------------------------------------------------

    def start_all(self) -> None:
        """AB-PIM entry: reset every unit's sequencer (PPC <- 0)."""
        for unit in self.units:
            unit.start()

    def stop_all(self) -> None:
        """AB-PIM exit."""
        for unit in self.units:
            unit.stop()

    def flush_pending(self) -> None:
        """Execute any deferred triggers; a no-op for the eager executor.

        The trace-compiled subclass (:mod:`repro.pim.fused`) buffers
        column triggers within an AB-PIM window and executes them in
        compiled groups; the device calls this hook before any
        register-mapped access so deferred state is never observable.
        """

    def abort_pending(self) -> None:
        """Discard any deferred triggers (channel hard-reset path)."""

    # -- the batched trigger path --------------------------------------------------

    def _scalar(self, trig: ColumnTrigger) -> None:
        self.scalar_fallbacks += 1
        for unit in self.units:
            unit.trigger(trig)

    def trigger_all(self, trig: ColumnTrigger) -> None:
        """Execute one broadcast column command on every unit.

        Equivalent to ``for unit in units: unit.trigger(trig)`` — batched
        when the units are verifiably in lock-step, scalar otherwise.
        """
        units = self.units
        if not (self.enabled and self._fp16_ok):
            for unit in units:
                unit.trigger(trig)
            return
        leader = units[0]
        if leader.exited:
            for unit in units[1:]:
                if not unit.exited:
                    self._scalar(trig)
                    return
            for unit in units:
                stats = unit.stats
                stats.triggers += 1
                stats.ignored_after_exit += 1
            self.batched_triggers += 1
            return
        ppc = leader.ppc
        nop_remaining = leader._nop_remaining
        jump_state = leader._jump_state
        for unit in units[1:]:
            if (
                unit.exited
                or unit.ppc != ppc
                or unit._nop_remaining != nop_remaining
                or unit._jump_state != jump_state
            ):
                self._scalar(trig)
                return
        if not 0 <= ppc < CRF_ENTRIES:
            self._scalar(trig)  # every unit raises identically, in order
            return
        word = leader.regs.crf[ppc]
        for unit in units[1:]:
            if unit.regs.crf[ppc] != word:
                self._scalar(trig)
                return
        try:
            instr = decode(word)
        except ValueError:
            self._scalar(trig)  # garbage word: raise exactly as before
            return
        op = instr.opcode
        if op is Opcode.NOP:
            remaining = nop_remaining - 1
            resolved = None
            if remaining <= 0:
                resolved = self._dry_resolve(ppc + 1, 0, jump_state)
                if resolved is None:
                    self._scalar(trig)
                    return
            for unit in units:
                stats = unit.stats
                stats.triggers += 1
                stats.instructions += 1
                unit._nop_remaining = remaining
            self.batched_triggers += 1
            if resolved is not None:
                self._commit(resolved)
            return
        if op is Opcode.JUMP or op is Opcode.EXIT:
            # A control word at the trigger fetch means the CRF changed
            # under a resolved sequencer; the scalar path raises.
            self._scalar(trig)
            return
        # Control resolution is data-independent, so it dry-runs on a
        # scratch copy *before* the instruction executes: any irregularity
        # (divergent CRF word, bad PPC, garbage word) routes the whole
        # trigger to the scalar loop while every unit is still pristine.
        resolved = self._dry_resolve(ppc + 1, nop_remaining, jump_state)
        if resolved is None:
            self._scalar(trig)
            return
        if not self._execute_batch(instr, trig):
            self._scalar(trig)
            return
        self.batched_triggers += 1
        self._commit(resolved)

    # -- batched execute -----------------------------------------------------------

    def _any_failed(self, space: OperandSpace) -> bool:
        if space is OperandSpace.EVEN_BANK:
            return any(u.even_bank._failed_channel is not None for u in self.units)
        return any(u.odd_bank._failed_channel is not None for u in self.units)

    def _read(
        self, operand: Operand, instr: Instruction, trig: ColumnTrigger
    ) -> np.ndarray:
        """One operand for all units: ``(units, 16)`` or broadcastable."""
        space = operand.space
        if space.is_bank:
            columns = [
                unit._bank(space).peek(trig.row, trig.col) for unit in self.units
            ]
            return np.stack(columns).view(np.float16)
        if space is OperandSpace.HOST:
            return trig.host_fp16()  # (16,) broadcast over (units, 16)
        index = trig.col % GRF_REGS if instr.aam else operand.index
        if space.is_grf:
            return self.stacked.grf(space)[:, index]
        return self.stacked.srf(space)[:, index][:, None]  # (units, 1)

    def _execute_batch(self, instr: Instruction, trig: ColumnTrigger) -> bool:
        """Run one data/ALU instruction on all units at once.

        Returns False (without mutating anything) whenever the scalar
        path would raise or handle an irregular case — the caller then
        delegates to the per-unit loop for exact legacy behaviour.
        """
        op = instr.opcode
        dst = instr.dst
        if op is Opcode.MOV or op is Opcode.FILL:
            reads: Tuple[Operand, ...] = (instr.src0,)
        elif op is Opcode.MUL or op is Opcode.ADD:
            reads = (instr.src0, instr.src1)
        elif op is Opcode.MAC:
            reads = (instr.src0, instr.src1, dst)
        elif op is Opcode.MAD:
            reads = (instr.src0, instr.src1, instr.src2)
        else:
            return False
        bank_reads = 0
        for operand in reads:
            space = operand.space
            if space.is_bank:
                if trig.is_write or self._any_failed(space):
                    return False
                bank_reads += 1
            elif space is OperandSpace.HOST:
                if not trig.is_write or trig.host_data is None:
                    return False
            elif not (space.is_grf or space.is_srf):
                return False
        if dst.space.is_bank:
            if not trig.is_write or self._any_failed(dst.space):
                return False
        elif not dst.space.is_grf:
            return False

        values = [self._read(operand, instr, trig) for operand in reads]
        if op is Opcode.MOV or op is Opcode.FILL:
            result = values[0]
            if instr.relu:
                result = vec_relu(result)
            flops = 0
        elif op is Opcode.MUL:
            result = vec_mul(values[0], values[1])
            flops = LANES
        elif op is Opcode.ADD:
            result = vec_add(values[0], values[1])
            flops = LANES
        elif op is Opcode.MAC:
            result = vec_add(values[2], vec_mul(values[0], values[1]))
            flops = 2 * LANES
        else:  # MAD
            result = vec_add(vec_mul(values[0], values[1]), values[2])
            flops = 2 * LANES

        if dst.space.is_grf:
            index = trig.col % GRF_REGS if instr.aam else dst.index
            self.stacked.grf(dst.space)[:, index] = result
            bank_writes = 0
        else:
            data = np.asarray(result, dtype=np.float16)
            for i, unit in enumerate(self.units):
                unit._bank(dst.space).poke(
                    trig.row, trig.col, data[i].view(np.uint8)
                )
            bank_writes = 1
        for unit in self.units:
            stats = unit.stats
            stats.triggers += 1
            stats.instructions += 1
            stats.flops += flops
            stats.bank_reads += bank_reads
            stats.bank_writes += bank_writes
        return True

    # -- shared control resolution ---------------------------------------------------

    def _dry_resolve(self, ppc, nop_remaining, jump_state):
        """Resolve control on a scratch copy of the shared sequencer state.

        Mirrors :meth:`PimExecutionUnit._resolve_control` exactly —
        zero-cycle JUMP with per-slot iteration counts, EXIT, NOP arming —
        while cross-checking every follower's CRF word at each visited
        program counter.  Returns the post-resolution
        ``(ppc, exited, nop_remaining, jump_state)`` tuple, or None when
        the scalar loop must take over: a follower's CRF diverges at a
        visited index, the PPC leaves the CRF, a word fails to decode, or
        resolution does not converge.  Because nothing has executed yet
        when None is returned, the scalar fallback reproduces legacy
        behaviour (including the exact exception and partial-unit state)
        bit for bit.
        """
        units = self.units
        leader = units[0]
        followers = units[1:]
        jump = dict(jump_state)
        exited = False
        steps = 0
        while not exited:
            steps += 1
            if steps > 1_000_000:
                return None
            if not 0 <= ppc < CRF_ENTRIES:
                return None
            word = leader.regs.crf[ppc]
            for follower in followers:
                if follower.regs.crf[ppc] != word:
                    return None
            try:
                instr = decode(word)
            except ValueError:
                return None
            opcode = instr.opcode
            if opcode is Opcode.JUMP:
                remaining = jump.get(ppc)
                if remaining is None:
                    remaining = instr.imm1
                if remaining > 0:
                    jump[ppc] = remaining - 1
                    ppc += instr.imm0
                else:
                    # Exhausted: fall through and re-arm for re-entry.
                    jump.pop(ppc, None)
                    ppc += 1
                continue
            if opcode is Opcode.EXIT:
                exited = True
                continue
            if opcode is Opcode.NOP and nop_remaining == 0:
                nop_remaining = max(1, instr.imm0)
            break
        return (ppc, exited, nop_remaining, jump)

    def _commit(self, resolved) -> None:
        """Install a dry-resolved sequencer state on every unit."""
        ppc, exited, nop_remaining, jump = resolved
        for i, unit in enumerate(self.units):
            unit.ppc = ppc
            unit.exited = exited
            unit._nop_remaining = nop_remaining
            unit._jump_state = dict(jump) if i else jump
