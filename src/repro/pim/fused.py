"""Trace-compiled fused kernel execution (the tier-2 hot path).

The paper's AB-PIM microkernels are *static* programs: once a CRF program
is broadcast, every execution of it against the same column-command
pattern performs exactly the same per-command register/bank dataflow —
only the data (HOST bursts, GRF/SRF/bank contents) differs.  The
lock-step executor (PR 5) still interprets one CRF instruction per
column command; :class:`FusedLockstepGroup` removes that last
interpretation layer by *trace compilation*:

1. **Capture** — within one AB-PIM window (``start_all`` .. ``stop_all``)
   column triggers are buffered instead of interpreted.  Nothing outside
   the group can observe the deferral: bank/bus timing still advances
   per command in the device, and the device flushes the tape before any
   register-mapped access, mode transition, or channel reset.
2. **Compile** — at the window boundary the tape is resolved once
   against the (verified-uniform) CRF program: the sequencer is
   simulated, every trigger is bound to its instruction, and runs of
   hazard-free same-instruction triggers are fused into single stacked
   ``(units, k, 16)``-lane NumPy group steps.  The compiled trace — group
   steps, per-unit stat deltas, and the final sequencer state — is
   stored in a content-keyed LRU :class:`TraceCache`.
3. **Replay** — later windows with the same content key skip straight to
   the group steps.  Bank operands are gathered live through
   ``peek_columns``/``poke_columns`` (so SEC-DED checks, corrections,
   inline scrubs, and uncorrectable raises happen exactly as on the
   interpreted path), HOST operands are gathered from the *current*
   tape, and GRF/SRF operands slice the stacked register state.

**Cache keys are content signatures**, not identities: the channel id,
the uniform sequencer entry state, every CRF word of the program, and
the per-trigger ``(is_write, row, col, has_host)`` pattern.  A CRF fault
upset therefore *cannot* replay a stale program — the flipped word
changes the key — and the fault injector additionally calls
:meth:`TraceCache.invalidate_channel` (modelling the driver dropping its
compiled traces alongside the broadcast cache) so the bounded cache
never accumulates entries for corrupted or quarantined channels.

Anything irregular falls back to the inherited lock-step interpreter,
trigger by trigger, which itself falls back to the per-unit scalar
loop — so the fused path is bit-exact with both oracles by
construction wherever it engages, and *is* the oracle path wherever it
does not:

* divergent per-unit sequencer state or CRF contents -> interpreted;
* a control word at a trigger fetch, a garbage word, an out-of-range
  PPC, an operand/trigger-kind mismatch -> the tape compiles *poisoned*
  (cached, so the check is paid once) and replays interpreted;
* a hard-failed bank -> interpreted (the lock-step refusal), raising
  :class:`~repro.errors.PimChannelError` exactly as before.

The one observable difference is exception *ordering* inside a group:
an uncorrectable ECC word aborts the whole group step before any unit's
writes land, where the interpreter leaves earlier triggers fully
executed.  This extends the documented lock-step caveat (see
:mod:`repro.pim.lockstep`): both states are post-error garbage the
self-healing layer discards before retrying.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..common.ecc import check_words
from ..common.fp16 import vec_add, vec_mul, vec_relu
from ..dram.bank import Bank
from ..dram.ecc import EccBank
from .exec_unit import ColumnTrigger, PimExecutionUnit
from .isa import CRF_ENTRIES, GRF_REGS, Instruction, Opcode, OperandSpace, decode
from .lockstep import LockstepGroup
from .registers import LANES

__all__ = ["CompiledTrace", "FusedLockstepGroup", "TraceCache", "TraceCacheStats"]


# -- the compiled-trace cache ---------------------------------------------------


@dataclass
class TraceCacheStats:
    """Observability counters of one compiled-trace cache."""

    hits: int = 0
    misses: int = 0
    compiles: int = 0
    poisoned: int = 0
    evictions: int = 0
    invalidations: int = 0


class TraceCache:
    """A content-keyed, LRU-bounded store of compiled trigger tapes.

    Keys are ``(channel_id, entry_state, crf_words, tape_signature)`` —
    pure content, so a mutated program or a different command pattern can
    never hit a stale entry.  One cache is shared by every channel of a
    system (``PimSystem._trace_cache``); :meth:`invalidate_channel` drops
    one channel's entries on CRF fault upsets and channel quarantine.
    """

    def __init__(self, limit: int = 128):
        self.limit = max(1, int(limit))
        self._entries: "OrderedDict[tuple, CompiledTrace]" = OrderedDict()
        self.stats = TraceCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> List[tuple]:
        """The live cache keys, least recently used first."""
        return list(self._entries)

    def get(self, key: tuple) -> Optional["CompiledTrace"]:
        """The entry under ``key`` (freshened), or None on a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: tuple, entry: "CompiledTrace") -> None:
        """Insert ``entry``, evicting least-recently-used past the limit."""
        self._entries[key] = entry
        self.stats.compiles += 1
        if entry.poisoned:
            self.stats.poisoned += 1
        while len(self._entries) > self.limit:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate_channel(self, channel_id: int) -> int:
        """Drop every compiled trace of one channel; returns the count."""
        doomed = [key for key in self._entries if key[0] == channel_id]
        for key in doomed:
            del self._entries[key]
        self.stats.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> None:
        """Drop every entry (the stats survive)."""
        self._entries.clear()


# -- compiled representation -----------------------------------------------------


@dataclass
class _GroupStep:
    """One fused run of hazard-free same-instruction triggers.

    ``reads``/``dst`` are pre-resolved operand plans:

    * ``("bank", space, row, cols)`` — gather/scatter ``cols`` of ``row``
      on every unit's bank for ``space``;
    * ``("host", tape_positions)`` — gather the WR bursts of the current
      tape at ``tape_positions``;
    * ``("grf", space, indices)`` / ``("srf", space, indices)`` — fancy
      slices of the stacked register state.
    """

    opcode: Opcode
    relu: bool
    k: int
    reads: Tuple[tuple, ...]
    dst: tuple


@dataclass
class CompiledTrace:
    """One compiled (CRF program x command-stream signature) pair."""

    poisoned: bool
    groups: Tuple[_GroupStep, ...] = ()
    #: Uniform per-unit deltas: (triggers, instructions, flops,
    #: bank_reads, bank_writes, ignored_after_exit).
    stat_deltas: Tuple[int, int, int, int, int, int] = (0, 0, 0, 0, 0, 0)
    batched_triggers: int = 0
    #: Final (ppc, exited, nop_remaining, jump-slot items).
    end_state: tuple = (0, True, 0, ())
    #: Bank operand spaces touched (re-checked for failures per replay).
    bank_spaces: Tuple[OperandSpace, ...] = ()
    replays: int = 0


@dataclass
class _Step:
    """One trigger bound to its instruction during compilation."""

    pos: int  # tape position (HOST gather index)
    word: int
    is_write: bool
    row: int
    col: int
    instr: Instruction
    reads: List[tuple]  # per-operand ("bank", space) / ("host",) / ("grf"/"srf", space, idx)
    dst: tuple
    flops: int
    bank_reads: int
    bank_writes: int
    reg_reads: frozenset
    reg_writes: frozenset
    bank_spaces: frozenset

    @property
    def has_bank(self) -> bool:
        return bool(self.bank_spaces)


_FLOPS = {
    Opcode.MOV: 0,
    Opcode.FILL: 0,
    Opcode.MUL: LANES,
    Opcode.ADD: LANES,
    Opcode.MAC: 2 * LANES,
    Opcode.MAD: 2 * LANES,
}


class FusedLockstepGroup(LockstepGroup):
    """A lock-step group that trace-compiles AB-PIM windows.

    Drop-in for :class:`~repro.pim.lockstep.LockstepGroup`:
    ``trigger_all`` buffers, the window boundaries
    (``start_all``/``stop_all``/``flush_pending``) compile-or-replay the
    buffered tape, and every irregular case delegates to the inherited
    interpreter for bit-exact oracle behaviour.
    """

    def __init__(
        self,
        units: Sequence[PimExecutionUnit],
        enabled: bool = True,
        cache: Optional[TraceCache] = None,
        channel_id: int = 0,
    ):
        super().__init__(units, enabled=enabled)
        self.cache = cache if cache is not None else TraceCache()
        self.channel_id = channel_id
        self._tape: List[ColumnTrigger] = []
        # Observability: tapes replayed from compiled traces vs routed
        # through the inherited interpreter.
        self.fused_replays = 0
        self.fused_fallbacks = 0

    # -- window control ---------------------------------------------------------

    def start_all(self) -> None:
        """AB-PIM entry: flush the prior window, then reset the sequencers."""
        if self._tape:
            self.flush_pending()
        super().start_all()

    def stop_all(self) -> None:
        """AB-PIM exit: flush the window closed by this mode transition."""
        if self._tape:
            self.flush_pending()
        super().stop_all()

    def abort_pending(self) -> None:
        """Discard the buffered tape without executing it (hard reset)."""
        self._tape.clear()

    def trigger_all(self, trig: ColumnTrigger) -> None:
        """Buffer one broadcast column command for deferred fused execution.

        Equivalent to the eager ``LockstepGroup.trigger_all`` — the device
        flushes the tape at every point deferred state could be observed.
        """
        if self.enabled and self._fp16_ok:
            self._tape.append(trig)
            return
        super().trigger_all(trig)

    # -- flush: compile or replay ------------------------------------------------

    def _interpret(self, tape: List[ColumnTrigger]) -> None:
        """Route a whole tape through the inherited lock-step interpreter."""
        self.fused_fallbacks += 1
        for trig in tape:
            LockstepGroup.trigger_all(self, trig)

    def flush_pending(self) -> None:
        """Execute the buffered tape: replay a compiled trace, compile one,
        or route the triggers through the inherited interpreter."""
        tape = self._tape
        if not tape:
            return
        # Detach first: a mid-replay error (uncorrectable ECC word, dead
        # channel) must not leave triggers behind to re-execute on reset.
        self._tape = []
        units = self.units
        leader = units[0]
        entry_state = leader.sequencer_state()
        for unit in units[1:]:
            if unit.sequencer_state() != entry_state:
                self._interpret(tape)
                return
        crf = leader.regs.crf
        for unit in units[1:]:
            if unit.regs.crf != crf:
                self._interpret(tape)
                return
        sig = tuple(
            (t.is_write, t.row, t.col, t.host_data is not None) for t in tape
        )
        key = (self.channel_id, entry_state, tuple(crf), sig)
        entry = self.cache.get(key)
        if entry is None:
            entry = self._compile(sig, entry_state)
            self.cache.put(key, entry)
        if entry.poisoned or any(
            self._any_failed(space) for space in entry.bank_spaces
        ):
            self._interpret(tape)
            return
        self._replay(entry, tape)

    def _replay(self, entry: CompiledTrace, tape: List[ColumnTrigger]) -> None:
        for group in entry.groups:
            self._exec_group(group, tape)
        end = entry.end_state
        for unit in self.units:
            unit.install_sequencer_state(*end)
        dt, di, df, dbr, dbw, dig = entry.stat_deltas
        for unit in self.units:
            stats = unit.stats
            stats.triggers += dt
            stats.instructions += di
            stats.flops += df
            stats.bank_reads += dbr
            stats.bank_writes += dbw
            stats.ignored_after_exit += dig
        self.batched_triggers += entry.batched_triggers
        entry.replays += 1
        self.fused_replays += 1

    @staticmethod
    def _gather_bank(banks: List[Bank], row: int, cols) -> np.ndarray:
        """Gather ``cols`` of ``row`` from every unit's bank: ``(units, k, 32)``.

        For vectorized :class:`~repro.dram.ecc.EccBank` banks, the SEC-DED
        syndrome check of the whole gather runs as *one* array pass across
        units; only a dirty gather (or a plain/scalar/subclassed bank)
        falls to the per-bank column path, which classifies, corrects,
        scrubs, counts, and raises exactly as the interpreted executor.
        Stats parity: a clean bank's ``words_checked`` advances by the same
        ``k * words_per_col`` on either path.
        """
        if all(type(b) is EccBank and b.use_vectorized for b in banks):
            raw = np.stack([Bank.peek_columns(b, row, cols) for b in banks])
            words = raw.view("<u8")  # (units, k, words_per_col)
            config = banks[0].config
            wpc = config.col_bytes // 8
            idx = (np.asarray(cols)[:, None] * wpc + np.arange(wpc)).ravel()
            checks = np.stack([b._check_array(row)[idx] for b in banks])
            if check_words(words.ravel(), checks.ravel()).all():
                per_bank = words[0].size
                for b in banks:
                    b.ecc_stats.words_checked += per_bank
                return raw
        return np.stack([b.peek_columns(row, cols) for b in banks])

    def _exec_group(self, group: _GroupStep, tape: List[ColumnTrigger]) -> None:
        units = self.units
        values = []
        for plan in group.reads:
            kind = plan[0]
            if kind == "bank":
                _, space, row, cols = plan
                banks = [u._bank(space) for u in units]
                stacked = self._gather_bank(banks, row, cols)
                values.append(stacked.view(np.float16))  # (units, k, 16)
            elif kind == "host":
                positions = plan[1]
                values.append(
                    np.stack([tape[i].host_fp16() for i in positions])[None]
                )  # (1, k, 16) broadcast over units
            elif kind == "grf":
                values.append(self.stacked.grf(plan[1])[:, plan[2], :])
            else:  # srf: (units, k, 1) broadcast over lanes
                values.append(self.stacked.srf(plan[1])[:, plan[2]][:, :, None])
        op = group.opcode
        if op is Opcode.MOV or op is Opcode.FILL:
            result = values[0]
            if group.relu:
                result = vec_relu(result)
        elif op is Opcode.MUL:
            result = vec_mul(values[0], values[1])
        elif op is Opcode.ADD:
            result = vec_add(values[0], values[1])
        elif op is Opcode.MAC:
            result = vec_add(values[2], vec_mul(values[0], values[1]))
        else:  # MAD
            result = vec_add(vec_mul(values[0], values[1]), values[2])
        dst = group.dst
        if dst[0] == "grf":
            self.stacked.grf(dst[1])[:, dst[2], :] = result
        else:
            _, space, row, cols = dst
            data = np.ascontiguousarray(
                np.broadcast_to(result, (len(units), group.k, LANES)),
                dtype=np.float16,
            )
            raw = data.view(np.uint8)
            for i, unit in enumerate(units):
                unit._bank(space).poke_columns(row, cols, raw[i])

    # -- compilation -------------------------------------------------------------

    def _compile(self, sig: tuple, entry_state: tuple) -> CompiledTrace:
        crf = self.units[0].regs.crf
        ppc, exited, nop_remaining, jump_items = entry_state
        jump: Dict[int, int] = dict(jump_items)
        poisoned = CompiledTrace(poisoned=True)
        steps: List[_Step] = []
        triggers = instructions = flops = bank_reads = bank_writes = ignored = 0
        for pos, (is_write, row, col, has_host) in enumerate(sig):
            triggers += 1
            if exited:
                # The interpreter requires *every* unit exited for the
                # stats-only path; uniformity was verified at flush.
                ignored += 1
                continue
            if not 0 <= ppc < CRF_ENTRIES:
                return poisoned  # the scalar path raises here
            word = crf[ppc]
            try:
                instr = decode(word)
            except ValueError:
                return poisoned
            op = instr.opcode
            if op is Opcode.NOP:
                instructions += 1
                nop_remaining -= 1
                if nop_remaining <= 0:
                    resolved = self._dry_resolve(ppc + 1, 0, jump)
                    if resolved is None:
                        return poisoned
                    ppc, exited, nop_remaining, jump = resolved
                continue
            if op is Opcode.JUMP or op is Opcode.EXIT:
                # A control word at a trigger fetch: the CRF changed under
                # a resolved sequencer; the scalar path raises.
                return poisoned
            resolved = self._dry_resolve(ppc + 1, nop_remaining, jump)
            if resolved is None:
                return poisoned
            step = _plan_step(pos, word, instr, is_write, row, col, has_host)
            if step is None:
                return poisoned
            instructions += 1
            flops += step.flops
            bank_reads += step.bank_reads
            bank_writes += step.bank_writes
            steps.append(step)
            ppc, exited, nop_remaining, jump = resolved
        spaces = frozenset().union(*(s.bank_spaces for s in steps)) if steps else frozenset()
        return CompiledTrace(
            poisoned=False,
            groups=tuple(_fuse_steps(steps)),
            stat_deltas=(
                triggers, instructions, flops, bank_reads, bank_writes, ignored,
            ),
            batched_triggers=len(sig),
            end_state=(ppc, exited, nop_remaining, tuple(sorted(jump.items()))),
            bank_spaces=tuple(spaces),
        )


def _plan_step(
    pos: int,
    word: int,
    instr: Instruction,
    is_write: bool,
    row: int,
    col: int,
    has_host: bool,
) -> Optional[_Step]:
    """Bind one trigger to its instruction, mirroring the lock-step
    refusal conditions: any case ``_execute_batch`` would hand to the
    scalar loop returns None (the tape compiles poisoned)."""
    op = instr.opcode
    dst = instr.dst
    if op is Opcode.MOV or op is Opcode.FILL:
        operands = (instr.src0,)
    elif op is Opcode.MUL or op is Opcode.ADD:
        operands = (instr.src0, instr.src1)
    elif op is Opcode.MAC:
        operands = (instr.src0, instr.src1, dst)
    elif op is Opcode.MAD:
        operands = (instr.src0, instr.src1, instr.src2)
    else:
        return None
    reads: List[tuple] = []
    reg_reads = set()
    bank_spaces = set()
    bank_read_count = 0
    for operand in operands:
        space = operand.space
        if space.is_bank:
            if is_write:
                return None
            bank_read_count += 1
            bank_spaces.add(space)
            reads.append(("bank", space))
        elif space is OperandSpace.HOST:
            if not is_write or not has_host:
                return None
            reads.append(("host",))
        elif space.is_grf or space.is_srf:
            index = col % GRF_REGS if instr.aam else operand.index
            reg_reads.add((space, index))
            reads.append(("grf" if space.is_grf else "srf", space, index))
        else:
            return None
    reg_writes = set()
    if dst.space.is_bank:
        if not is_write:
            return None
        bank_spaces.add(dst.space)
        dst_plan = ("bank", dst.space)
        bank_write_count = 1
    elif dst.space.is_grf:
        index = col % GRF_REGS if instr.aam else dst.index
        reg_writes.add((dst.space, index))
        dst_plan = ("grf", dst.space, index)
        bank_write_count = 0
    else:
        return None
    return _Step(
        pos=pos,
        word=word,
        is_write=is_write,
        row=row,
        col=col,
        instr=instr,
        reads=reads,
        dst=dst_plan,
        flops=_FLOPS[op],
        bank_reads=bank_read_count,
        bank_writes=bank_write_count,
        reg_reads=frozenset(reg_reads),
        reg_writes=frozenset(reg_writes),
        bank_spaces=frozenset(bank_spaces),
    )


class _GroupBuilder:
    """Accumulates consecutive steps that may execute as one array op."""

    def __init__(self, step: _Step):
        self.steps = [step]
        self.word = step.word
        self.row = step.row
        self.cols = {step.col}
        self.reg_writes = set(step.reg_writes)

    def accepts(self, step: _Step) -> bool:
        if step.word != self.word:
            return False
        if step.has_bank and (step.row != self.row or step.col in self.cols):
            return False
        # Vectorized execution reads every step's operands before any
        # write lands, so a step may not read — or rewrite — a register
        # an earlier step of the group writes (sequential semantics).
        if step.reg_reads & self.reg_writes or step.reg_writes & self.reg_writes:
            return False
        return True

    def add(self, step: _Step) -> None:
        self.steps.append(step)
        self.cols.add(step.col)
        self.reg_writes |= step.reg_writes

    def finish(self) -> _GroupStep:
        steps = self.steps
        first = steps[0]
        cols = np.array([s.col for s in steps])
        positions = [s.pos for s in steps]
        reads = []
        for j, plan in enumerate(first.reads):
            kind = plan[0]
            if kind == "bank":
                reads.append(("bank", plan[1], first.row, cols))
            elif kind == "host":
                reads.append(("host", positions))
            else:  # grf / srf
                reads.append(
                    (kind, plan[1], np.array([s.reads[j][2] for s in steps]))
                )
        if first.dst[0] == "bank":
            dst = ("bank", first.dst[1], first.row, cols)
        else:
            dst = ("grf", first.dst[1], np.array([s.dst[2] for s in steps]))
        return _GroupStep(
            opcode=first.instr.opcode,
            relu=first.instr.relu,
            k=len(steps),
            reads=tuple(reads),
            dst=dst,
        )


def _fuse_steps(steps: List[_Step]) -> List[_GroupStep]:
    """Fuse bound steps into maximal hazard-free group steps."""
    builders: List[_GroupBuilder] = []
    for step in steps:
        if builders and builders[-1].accepts(step):
            builders[-1].add(step)
        else:
            builders.append(_GroupBuilder(step))
    return [b.finish() for b in builders]
