"""The 5-stage execution pipeline (Section IV-B) as a timing model.

The architectural simulator (:mod:`repro.pim.exec_unit`) updates state
atomically per trigger because execution is slaved to the column-command
cadence; this module models the pipeline itself —

    1. FETCH/DECODE -> 2. BANK READ -> 3. MULT -> 4. ADD -> 5. WRITE-BACK

with the paper's skip rules (MUL skips ADD, ADD skips MULT, data movement
skips both; a bank-free instruction skips BANK READ) — and verifies the
property the whole architecture rests on: at the AB-mode trigger cadence
(tCCD_L), instructions flow through with **deterministic latency and no
structural hazards**, which is what lets a JEDEC controller treat PIM
execution as ordinary column accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .isa import Instruction, Opcode, OperandSpace

__all__ = ["STAGES", "PipelineModel", "StageOccupancy", "stages_for"]

STAGES = ("FETCH_DECODE", "BANK_READ", "MULT", "ADD", "WRITE_BACK")


def stages_for(instr: Instruction) -> Tuple[str, ...]:
    """The stages one instruction occupies, with the Section IV-B skips."""
    op = instr.opcode
    if op.is_control:
        # JUMP resolves at fetch (zero-cycle); NOP/EXIT consume no datapath.
        return ("FETCH_DECODE",)
    reads_bank = any(
        operand.space.is_bank
        for operand in (instr.src0, instr.src1, instr.src2)
    )
    stages: List[str] = ["FETCH_DECODE"]
    if reads_bank:
        stages.append("BANK_READ")
    if op in (Opcode.MUL, Opcode.MAC, Opcode.MAD):
        stages.append("MULT")
    if op in (Opcode.ADD, Opcode.MAC, Opcode.MAD):
        stages.append("ADD")
    if op.is_move or op.is_arithmetic:
        stages.append("WRITE_BACK")
    return tuple(stages)


@dataclass(frozen=True)
class StageOccupancy:
    """One instruction's occupancy of one stage."""

    instruction_index: int
    stage: str
    cycle: int


class PipelineModel:
    """Schedules a trigger-driven instruction stream through the pipeline.

    Each instruction enters FETCH_DECODE at its trigger cycle and advances
    one stage per cycle (skipped stages take no cycle).  ``schedule``
    returns per-instruction completion cycles and the full occupancy list;
    ``hazards`` reports any cycle where two instructions contend for a
    stage — empty at legal DRAM cadences.
    """

    def schedule(
        self, stream: Sequence[Tuple[Instruction, int]]
    ) -> Tuple[List[int], List[StageOccupancy]]:
        """Completion cycles and stage occupancy of a trigger stream."""
        occupancy: List[StageOccupancy] = []
        completions: List[int] = []
        for index, (instr, trigger_cycle) in enumerate(stream):
            cycle = trigger_cycle
            for stage in stages_for(instr):
                occupancy.append(StageOccupancy(index, stage, cycle))
                cycle += 1
            completions.append(cycle - 1)
        return completions, occupancy

    def hazards(
        self, stream: Sequence[Tuple[Instruction, int]]
    ) -> List[Tuple[str, int]]:
        """(stage, cycle) pairs claimed by more than one instruction."""
        _, occupancy = self.schedule(stream)
        seen: Dict[Tuple[str, int], int] = {}
        conflicts: List[Tuple[str, int]] = []
        for record in occupancy:
            key = (record.stage, record.cycle)
            if key in seen and seen[key] != record.instruction_index:
                conflicts.append(key)
            seen[key] = record.instruction_index
        return conflicts

    def latency(self, instr: Instruction) -> int:
        """Deterministic trigger-to-writeback latency in core cycles."""
        return len(stages_for(instr))

    def min_safe_cadence(self, instructions: Sequence[Instruction]) -> int:
        """Smallest uniform trigger spacing with no structural hazards.

        The deepest instruction (MAC with a bank operand: 5 stages) pins
        this at 1 cycle in a fully pipelined design — each stage holds one
        instruction — so any cadence >= 1 works *if* every instruction has
        the same depth; mixed depths can collide at smaller cadences.
        """
        for cadence in range(1, 8):
            stream = [(instr, i * cadence) for i, instr in enumerate(instructions)]
            if not self.hazards(stream):
                return cadence
        return 8
