"""A tour of the paper's evaluation (Section VII) via the perf models.

Prints compact versions of Fig. 10 (performance), Fig. 12 (energy),
Fig. 14 (design-space exploration) and the Table I MAC comparison, with
the paper's reported values alongside.

Run:  python examples/evaluation_tour.py
"""

from repro.apps.microbench import ADD_SIZES, GEMV_SIZES
from repro.apps.models import ALL_APPS
from repro.dse import dse_speedups
from repro.perf import (
    DevicePowerModel,
    EnergyModel,
    LatencyModel,
    MacUnitModel,
    PAPER_TABLE1,
    PIM_HBM,
    PROC_HBM,
)
from repro.apps.models import ALEXNET, DS2, GNMT


def fig10():
    host, pim = LatencyModel(PROC_HBM), LatencyModel(PIM_HBM)
    print("== Fig. 10: PIM-HBM speedup over HBM (batch 1 / 2 / 4) ==")
    for g in GEMV_SIZES:
        ratios = [
            host.host_gemv(g.m, g.n, b).ns / pim.pim_gemv(g.m, g.n, b).ns
            for b in (1, 2, 4)
        ]
        print("  {:10s} {:5.2f} {:5.2f} {:5.2f}".format(g.name, *ratios))
    for a in ADD_SIZES[:1]:
        ratios = [
            host.host_stream(a.n, 3, b).ns / pim.pim_add(a.n, b).ns
            for b in (1, 2, 4)
        ]
        print("  {:10s} {:5.2f} {:5.2f} {:5.2f}   (paper B1: 1.6)".format(a.name, *ratios))
    for app in ALL_APPS:
        ratios = [
            host.app_time(app, b)["total"] / pim.app_time(app, b)["total"]
            for b in (1, 2, 4)
        ]
        print("  {:10s} {:5.2f} {:5.2f} {:5.2f}".format(app.name, *ratios))
    print("  (paper B1: GEMV1 11.2, DS2 3.5, GNMT 1.5, AlexNet 1.4, ResNet 1.0)")


def fig12():
    hbm, pim = EnergyModel(PROC_HBM), EnergyModel(PIM_HBM)
    print("\n== Fig. 12: PIM-HBM energy efficiency over PROC-HBM ==")
    eh = hbm.kernel_energy_j(hbm.gemv_phase(1024, 4096))
    ep = pim.kernel_energy_j(pim.gemv_phase(1024, 4096))
    print(f"  GEMV    {eh / ep:5.2f}   (paper 8.25)")
    for app, paper in ((DS2, 3.2), (GNMT, 1.38), (ALEXNET, 1.5)):
        ratio = hbm.app_energy_j(app)[0] / pim.app_energy_j(app)[0]
        print(f"  {app.name:7s} {ratio:5.2f}   (paper {paper})")
    dev = DevicePowerModel()
    print(f"  device power: PIM-HBM x{dev.pim_total:.3f} of HBM (paper x1.054)")
    print(f"  energy/bit reduction: {dev.energy_per_bit_reduction:.2f}x (paper 3.5x)")


def fig14():
    results = dse_speedups()
    base = results["PIM-HBM"]["geomean"]
    print("\n== Fig. 14: enhanced microarchitectures (geomean gain) ==")
    for name, row in results.items():
        if name == "PIM-HBM":
            continue
        print(f"  {name:14s} x{row['geomean'] / base:.2f}")
    print("  (paper: 2x ~+40%, 2BA ~+20%, SRW ~+10%)")


def table1():
    print("\n== Table I: MAC units in 20nm DRAM (area, normalised) ==")
    model = MacUnitModel()
    for name, row in model.normalised_table().items():
        print(f"  {name:26s} {row['area']:5.2f}  (paper {PAPER_TABLE1[name]['area']})")


def main():
    fig10()
    fig12()
    fig14()
    table1()


if __name__ == "__main__":
    main()
