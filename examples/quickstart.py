"""Quickstart: run linear algebra on the simulated PIM-HBM device.

The PIM BLAS is the public API most users want: hand it numpy arrays, get
results computed by the functional PIM simulator (FP16 MACs in the in-bank
execution units, driven entirely by standard DRAM commands) plus an
execution report.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import PimBlas, PimSystem


def main():
    # A small system: 4 pseudo-channels, 256 rows per bank.  The real
    # device has 16 pCHs per stack and 8192 rows (see repro.perf.specs).
    system = PimSystem(num_pchs=4, num_rows=256)
    blas = PimBlas(system)
    rng = np.random.default_rng(0)

    # --- GEMV: the key memory-bound kernel of RNN/FC layers -------------
    m, n = 512, 256
    w = (rng.standard_normal((m, n)) * 0.1).astype(np.float16)
    x = (rng.standard_normal(n) * 0.1).astype(np.float16)
    y, report = blas.gemv(w, x)

    gold = w.astype(np.float32) @ x.astype(np.float32)
    print(f"GEMV {m}x{n} on PIM:")
    print(f"  max |error| vs FP32    : {np.abs(y - gold).max():.2e}")
    print(f"  DRAM cycles            : {report.cycles}")
    print(f"  column commands        : {report.column_commands}")
    print(f"  thread-group fences    : {report.fences}")
    print(f"  PIM instructions       : {report.pim_instructions}")
    print(f"  PIM FLOPs              : {report.pim_flops}")

    # --- Elementwise kernels (residual connections, activations) --------
    a = (rng.standard_normal(20_000) * 0.5).astype(np.float16)
    b = (rng.standard_normal(20_000) * 0.5).astype(np.float16)

    total, rep_add = blas.add(a, b)
    assert np.array_equal(total, (a + b).astype(np.float16))
    print(f"\nADD 20k elements: {rep_add.cycles} cycles, "
          f"{rep_add.column_commands} columns")

    activated, _ = blas.relu(total)
    assert (activated >= 0).all()

    normed, _ = blas.bn(a, gamma=1.5, beta=-0.25)
    print(f"BN  20k elements: folded inference batch-norm via MAD+SRF")

    # The device always returns to standard single-bank DRAM mode.
    from repro.pim.modes import PimMode

    assert all(
        system.device.pch(i).mode is PimMode.SB for i in range(system.num_pchs)
    )
    print("\nAll kernels done; device back in standard DRAM (SB) mode.")


if __name__ == "__main__":
    main()
