"""Quickstart: run linear algebra on the simulated PIM-HBM device.

`PimContext` is the public entry point: one `SystemConfig` assembles the
device, driver, BLAS and profiler.  Hand the BLAS numpy arrays, get
results computed by the functional PIM simulator (FP16 MACs in the
in-bank execution units, driven entirely by standard DRAM commands); the
execution reports are folded into the context's profiler.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import PimContext, SystemConfig


def main():
    # A small system: 4 pseudo-channels, 256 rows per bank.  The real
    # device has 16 pCHs per stack and 8192 rows — SystemConfig.paper_scale()
    # builds that shape (see repro.perf.specs).
    config = SystemConfig(num_pchs=4, num_rows=256)
    rng = np.random.default_rng(0)

    with PimContext(config) as ctx:
        blas = ctx.blas

        # --- GEMV: the key memory-bound kernel of RNN/FC layers ---------
        m, n = 512, 256
        w = (rng.standard_normal((m, n)) * 0.1).astype(np.float16)
        x = (rng.standard_normal(n) * 0.1).astype(np.float16)
        y = blas.gemv(w, x)

        gold = w.astype(np.float32) @ x.astype(np.float32)
        print(f"GEMV {m}x{n} on PIM:")
        print(f"  max |error| vs FP32    : {np.abs(y - gold).max():.2e}")

        # --- Elementwise kernels (residual connections, activations) ----
        a = (rng.standard_normal(20_000) * 0.5).astype(np.float16)
        b = (rng.standard_normal(20_000) * 0.5).astype(np.float16)

        total = blas.add(a, b)
        assert np.array_equal(total, (a + b).astype(np.float16))

        activated = blas.relu(total)
        assert (activated >= 0).all()

        normed = blas.bn(a, gamma=1.5, beta=-0.25)
        print("ADD/ReLU/BN on 20k elements: bit-exact elementwise kernels")

        # --- Serving: batch + pipeline concurrent requests --------------
        with ctx.server(lanes=2, max_batch=8) as server:
            for i in range(16):
                if i % 2 == 0:
                    xi = (rng.standard_normal(n) * 0.1).astype(np.float16)
                    server.submit("gemv", weights=w, a=xi, arrival_ns=i * 500.0)
                else:
                    ai = (rng.standard_normal(4096) * 0.5).astype(np.float16)
                    bi = (rng.standard_normal(4096) * 0.5).astype(np.float16)
                    server.submit("add", a=ai, b=bi, arrival_ns=i * 500.0)
            serving = server.run()
        print(f"\nServed {serving.num_requests} mixed requests in "
              f"{serving.batches} batches "
              f"({serving.throughput_rps():,.0f} req/s)")

        # The device always returns to standard single-bank DRAM mode.
        from repro.pim.modes import PimMode

        system = ctx.system
        assert all(
            system.device.pch(i).mode is PimMode.SB
            for i in range(system.num_pchs)
        )
        print("\nAll kernels done; device back in standard DRAM (SB) mode.")
        print("\nProfile:")
        print("\n".join(ctx.report()))


if __name__ == "__main__":
    main()
