"""A tour of the Section VIII extensions, live on the simulator.

1. ECC: a GEMV survives injected bit flips (on-die SEC-DED);
2. refresh: JEDEC auto-refresh interleaves with a running PIM kernel;
3. multi-tenancy: two channels run different microkernels concurrently;
4. BFLOAT16 execution units: the Table I alternative, dynamic range live;
5. collaborative host+PIM GEMV at the batch crossover;
6. DRAM families: the same kernel on DDR4 / LPDDR4X / GDDR6 timing.

Run:  python examples/extensions_tour.py
"""

from dataclasses import replace

import numpy as np

from repro.common.fp16 import BF16, FP16, decode_format, encode_format
from repro.dram.bank import BankConfig
from repro.dram.device import DeviceConfig
from repro.dram.ecc import EccBank
from repro.dram.timing import DRAM_FAMILIES, HBM2_1GHZ
from repro.pim.device import PimHbmDevice
from repro.stack import CollaborativeGemv, GemvKernel, PimSystem, gemv_reference


def rand(shape, seed, scale=0.15):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * scale).astype(np.float16)


def ecc_demo():
    print("== 1. On-die ECC protecting a live GEMV ==")
    from repro.host.processor import HostSystem
    from repro.stack.driver import PimDeviceDriver
    from repro.stack.runtime import PimExecutor

    class EccSystem(PimSystem):
        def __init__(self):
            device = PimHbmDevice(
                DeviceConfig(num_pchs=1, bank_config=BankConfig(num_rows=128), ecc=True)
            )
            HostSystem.__init__(self, device)
            self.driver = PimDeviceDriver(device)
            self.executor = PimExecutor(self)

    system = EccSystem()
    w, x = rand((128, 64), 0), rand(64, 1)
    kernel = GemvKernel(system, 128, 64)
    kernel.load_weights(w)
    for bank_index in (0, 2, 4):
        system.device.pch(0).banks[bank_index].inject_error(
            kernel.plan.weight_base_row, 0, bit=7 + bank_index
        )
    y, _ = kernel(x)
    corrected = sum(
        b.ecc_stats.corrected
        for b in system.device.pch(0).banks
        if isinstance(b, EccBank)
    )
    ok = np.array_equal(y, gemv_reference(w, x, num_pchs=1))
    print(f"   injected 3 single-bit faults -> corrected {corrected}, "
          f"result bit-exact: {ok}\n")


def refresh_demo():
    print("== 2. Auto-refresh during a PIM kernel ==")
    timing = replace(HBM2_1GHZ, trefi=400, trfc=120)
    system = PimSystem(num_pchs=1, num_rows=128, refresh=True, timing=timing)
    w, x = rand((128, 128), 2), rand(128, 3)
    kernel = GemvKernel(system, 128, 128)
    kernel.load_weights(w)
    y, report = kernel(x)
    ok = np.array_equal(y, gemv_reference(w, x, num_pchs=1))
    print(f"   {system.controllers[0].refresh_count} refreshes interleaved, "
          f"{report.cycles} cycles, bit-exact: {ok}\n")


def bf16_demo():
    print("== 3. BFLOAT16 execution units (Table I alternative) ==")
    from repro.dram.bank import Bank
    from repro.pim.assembler import assemble_words
    from repro.pim.exec_unit import ColumnTrigger, PimExecutionUnit

    big = 100000.0  # beyond FP16's 65504
    for fmt in (FP16, BF16):
        cfg = BankConfig(num_rows=8)
        unit = PimExecutionUnit(0, Bank(cfg, HBM2_1GHZ), Bank(cfg, HBM2_1GHZ),
                                lane_format=fmt)
        unit.regs.grf_a[0] = encode_format(fmt, np.full(16, big))
        unit.regs.grf_b[0] = encode_format(fmt, np.full(16, 1.0))
        for i, word in enumerate(assemble_words("MUL GRF_A[1], GRF_A[0], GRF_B[0]\nEXIT")):
            unit.regs.crf[i] = word
        unit.start()
        unit.trigger(ColumnTrigger(is_write=False, row=0, col=0))
        out = decode_format(fmt, unit.regs.grf_a[1])[0]
        print(f"   {fmt.name:9s}: {big} * 1.0 = {out}")
    print("   (FP16 overflows to inf; BF16's FP32-sized exponent survives)\n")


def collaborative_demo():
    print("== 4. Collaborative host+PIM GEMV at the batch crossover ==")
    sweep = CollaborativeGemv.sweep_split(8192, 4096, batch=3, points=9)
    best = min(sweep, key=sweep.get)
    print(f"   batch 3, 8192x4096: pure host {sweep[0] / 1000:.0f} us, "
          f"pure PIM {sweep[8192] / 1000:.0f} us, "
          f"optimal split ({best} rows on PIM) {sweep[best] / 1000:.0f} us\n")


def families_demo():
    print("== 5. The same microkernel on every JEDEC DRAM family ==")
    for name, timing in DRAM_FAMILIES.items():
        system = PimSystem(num_pchs=1, num_rows=128, timing=timing)
        w, x = rand((128, 64), 4), rand(64, 5)
        kernel = GemvKernel(system, 128, 64)
        kernel.load_weights(w)
        y, report = kernel(x)
        ok = np.array_equal(y, gemv_reference(w, x, num_pchs=1))
        print(f"   {name:14s}: AB-factor x{timing.ab_bandwidth_factor:.0f}, "
              f"{report.cycles} cycles, bit-exact: {ok}")


def main():
    ecc_demo()
    refresh_demo()
    bf16_demo()
    collaborative_demo()
    families_demo()


if __name__ == "__main__":
    main()
