"""A DeepSpeech2-style LSTM network through the TF-like graph framework.

Demonstrates the paper's central software claim (Section V): the *same
unmodified graph* runs on the host backend and on the PIM backend — the
runtime preprocessor finds the LSTM/matvec ops and offloads them to the
PIM BLAS, while small ops stay on the host.

Run:  python examples/speech_lstm.py
"""

import numpy as np

from repro import GraphBuilder as G
from repro import GraphExecutor, PimSystem


def build_speech_model(rng, input_dim=40, hidden=64, classes=12):
    """A miniature DS2: one LSTM layer + an FC classifier over time."""
    w_ih = (rng.standard_normal((4 * hidden, input_dim)) * 0.1).astype(np.float16)
    w_hh = (rng.standard_normal((4 * hidden, hidden)) * 0.1).astype(np.float16)
    bias = (rng.standard_normal(4 * hidden) * 0.1).astype(np.float32)
    w_fc = (rng.standard_normal((classes, hidden)) * 0.1).astype(np.float16)

    spectrogram = G.placeholder("spectrogram")
    hidden_seq = G.lstm(spectrogram, w_ih, w_hh, bias, name="lstm_encoder")
    # Classify the final frame (a stand-in for the CTC head).
    final = G.last(G.relu(hidden_seq, name="seq_relu"), name="final_frame")
    logits = G.matvec(w_fc, final, name="classifier")
    return spectrogram, logits


def main():
    rng = np.random.default_rng(3)
    _, logits = build_speech_model(rng)

    # Synthetic 2-second utterance: T frames of filterbank features.
    utterance = (rng.standard_normal((6, 40)) * 0.3).astype(np.float16)
    feed = {"spectrogram": utterance}

    # --- Host baseline (PROC-HBM) ---------------------------------------
    host_out, host_report = GraphExecutor([logits]).run(feed)
    print("Host backend:")
    print(f"  ops on host: {len(host_report.host_nodes)}, offloaded: 0")

    # --- PIM backend: same graph, zero source changes --------------------
    system = PimSystem(num_pchs=2, num_rows=256)
    pim_out, pim_report = GraphExecutor(
        [logits], backend="pim", system=system, min_elements=128,
        simulate_pchs=1,
    ).run(feed)
    print("\nPIM backend (unmodified graph):")
    print(f"  offloaded ops : {pim_report.offloaded_nodes}")
    print(f"  host ops      : {pim_report.host_nodes}")
    print(f"  PIM launches  : {pim_report.pim_launches}")
    print(f"  PIM cycles    : {pim_report.pim_cycles}")

    drift = np.abs(
        np.asarray(host_out[0], np.float32)
        - np.asarray(pim_out[0], np.float32)
    ).max()
    print(f"\nmax |host - pim| on logits: {drift:.2e} "
          "(FP16 device arithmetic vs host FP32)")

    # The modelled end-to-end numbers for the real DS2 (Fig. 10):
    from repro.apps.models import DS2
    from repro.perf.latency import LatencyModel, PIM_HBM, PROC_HBM

    host_ns = LatencyModel(PROC_HBM).app_time(DS2)["total"]
    pim_ns = LatencyModel(PIM_HBM).app_time(DS2)["total"]
    print(f"\nFull DS2 model (performance model): "
          f"{host_ns / 1e6:.0f} ms -> {pim_ns / 1e6:.0f} ms, "
          f"speedup {host_ns / pim_ns:.1f}x (paper: 3.5x)")


if __name__ == "__main__":
    main()
