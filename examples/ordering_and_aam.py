"""Demonstration of command reordering and address-aligned mode (Fig. 5).

Modern memory controllers reorder DRAM commands for row-buffer locality.
Because a PIM instruction takes its bank operand from whatever column
address triggers it, reordering can silently bind the *wrong data* to an
instruction.  This example shows the three regimes the paper analyses:

* an AAM microkernel is correct even under an adversarial scheduler;
* an index-hardcoded microkernel breaks under the same scheduler;
* a strictly in-order controller makes both safe (the paper's fence-free
  projection).

Run:  python examples/ordering_and_aam.py
"""

import numpy as np

from repro.dram import SchedulerPolicy
from repro.pim.exec_unit import PimProgramError
from repro.stack import GemvKernel, PimSystem, gemv_reference

NON_AAM = "\n".join(
    [f"MOV GRF_A[{i}], HOST" for i in range(8)]
    + [f"MAC GRF_B[{i}], EVEN_BANK, GRF_A[{i}]" for i in range(8)]
    + ["JUMP -16, {reps}"]
    + [f"MOV EVEN_BANK[{i}], GRF_B[{i}]" for i in range(8)]
    + ["EXIT"]
)


def run(policy, seed=None, microkernel=None, fences=True):
    system = PimSystem(
        num_pchs=1, num_rows=128, policy=policy,
        scheduler_seed=seed, fence_penalty_cycles=0,
    )
    if not fences:
        for mc in system.controllers:
            mc.fence = lambda: None
    rng = np.random.default_rng(0)
    w = (rng.standard_normal((128, 64)) * 0.25).astype(np.float16)
    x = (rng.standard_normal(64) * 0.25).astype(np.float16)
    kernel = GemvKernel(system, 128, 64)
    if microkernel:
        kernel.MICROKERNEL = microkernel
    kernel.load_weights(w)
    try:
        y, _ = kernel(x)
    except PimProgramError as exc:
        return f"DEVICE ERROR ({exc})"
    ref = gemv_reference(w, x, num_pchs=1)
    if np.array_equal(y, ref):
        return "correct"
    return f"WRONG RESULT (max err {np.abs(y - ref).max():.3f})"


def main():
    print("GEMV 128x64 under different scheduler / microkernel combinations\n")
    cases = [
        ("AAM kernel, FR-FCFS scheduler (the product configuration)",
         dict(policy=SchedulerPolicy.FRFCFS)),
        ("AAM kernel, adversarial shuffle scheduler",
         dict(policy=SchedulerPolicy.SHUFFLE, seed=1)),
        ("hardcoded-index kernel, in-order controller",
         dict(policy=SchedulerPolicy.FCFS, microkernel=NON_AAM)),
        ("hardcoded-index kernel, adversarial shuffle  <- Fig. 5(c)",
         dict(policy=SchedulerPolicy.SHUFFLE, seed=1, microkernel=NON_AAM)),
        ("AAM kernel, shuffle, NO fences  <- window overflow",
         dict(policy=SchedulerPolicy.SHUFFLE, seed=1, fences=False)),
        ("AAM kernel, in-order controller, NO fences (fence-free study)",
         dict(policy=SchedulerPolicy.FCFS, fences=False)),
    ]
    for label, kwargs in cases:
        print(f"  {label:62s} -> {run(**kwargs)}")

    print(
        "\nAAM tolerates reordering within the 8-register window, which is"
        "\nwhy the host fences every 8 commands; an in-order PIM mode would"
        "\nremove the fences entirely (Section VII-B)."
    )


if __name__ == "__main__":
    main()
