"""A low-level walkthrough of the PIM architecture (Sections III-IV).

This example drives one pseudo-channel with raw JEDEC commands — exactly
what an unmodified memory controller would emit — and shows every stage:

1. entering all-bank (AB) mode with an ACT+PRE pair to the ABMR row;
2. programming a GEMV microkernel into the CRF with plain column writes;
3. entering AB-PIM mode via the PIM_OP_MODE register;
4. staging the input vector through WR-triggered ``MOV GRF <- HOST``
   instructions and streaming weights through RD-triggered MACs with
   address-aligned mode;
5. reading the partial sums back in standard single-bank mode.

Run:  python examples/microkernel_walkthrough.py
"""

import numpy as np

from repro.dram import BankConfig, Command, CommandType, HBM2_1GHZ
from repro.pim import PimMode, PimPseudoChannel, assemble_words, disassemble
from repro.pim.device import UNITS_PER_PCH
from repro.pim.registers import LANES


class CommandLog:
    """Issues commands in order and keeps a trace."""

    def __init__(self, channel):
        self.channel = channel
        self.cycle = 0
        self.trace = []

    def issue(self, cmd):
        self.cycle = max(self.cycle, self.channel.earliest_issue(cmd))
        result = self.channel.issue(cmd, self.cycle)
        self.trace.append((self.cycle, repr(cmd)))
        self.cycle += 1
        return result


def main():
    channel = PimPseudoChannel(HBM2_1GHZ, BankConfig(num_rows=64))
    mm = channel.memory_map
    bus = CommandLog(channel)
    rng = np.random.default_rng(7)

    # Problem: y = W @ x with one output tile (128 outputs) and 16 dims.
    m, n = UNITS_PER_PCH * LANES, 16
    w = (rng.standard_normal((m, n)) * 0.2).astype(np.float16)
    x = (rng.standard_normal(n) * 0.2).astype(np.float16)

    # Stage weights: unit u's EVEN bank holds its 16 output rows, one
    # 32-byte column per input dimension (chunk k -> columns 8k..8k+7).
    for u in range(UNITS_PER_PCH):
        for j in range(n):
            column = np.ascontiguousarray(w[u * LANES:(u + 1) * LANES, j])
            channel.banks[2 * u].poke(0, j, column.view(np.uint8))

    # 1. Enter AB mode: ACT + PRE to the ABMR row (no MRS, no kernel call).
    bus.issue(Command(CommandType.ACT, 0, 0, row=mm.abmr_row))
    bus.issue(Command(CommandType.PRE, 0, 0))
    assert channel.mode is PimMode.AB

    # 2. Program the microkernel (2 input chunks -> JUMP repeats once).
    source = """
    MOV  GRF_A[A], HOST            ; stage 8 replicated x values (WR)
    JUMP -1, 7
    MAC  GRF_B[A], EVEN_BANK, GRF_A[A]
    JUMP -1, 7
    JUMP -4, 1                     ; second chunk
    MOV  EVEN_BANK[A], GRF_B[A]    ; write partial sums (WR)
    JUMP -1, 7
    EXIT
    """
    words = assemble_words(source)
    print("Microkernel in the CRF:")
    for line in disassemble(words):
        print("   ", line)
    image = np.array(words, dtype="<u4").view(np.uint8)
    for col in range(4):
        bus.issue(Command(CommandType.WR, 0, 0, row=mm.crf_row, col=col,
                          data=image[col * 32:(col + 1) * 32]))

    # Zero the GRF_B accumulators through the register-mapped GRF row.
    for col in range(8, 16):
        bus.issue(Command(CommandType.WR, 0, 0, row=mm.grf_row, col=col,
                          data=np.zeros(32, dtype=np.uint8)))

    # 3. Enter AB-PIM mode.
    on = np.zeros(32, dtype=np.uint8)
    on[0] = 1
    bus.issue(Command(CommandType.WR, 0, 0, row=mm.conf_row, col=0, data=on))
    assert channel.mode is PimMode.AB_PIM

    # 4. The data phase: open the weight row once, then per chunk send
    #    8 WRs (x values, replicated to all 16 lanes) and 8 RDs (MACs).
    bus.issue(Command(CommandType.ACT, 0, 0, row=0))
    for chunk in range(2):
        for j in range(8):
            value = np.full(LANES, x[8 * chunk + j], dtype=np.float16)
            bus.issue(Command(CommandType.WR, 0, 0, row=0, col=8 * chunk + j,
                              data=value.view(np.uint8)))
        for j in range(8):
            bus.issue(Command(CommandType.RD, 0, 0, row=0, col=8 * chunk + j))
    # Epilogue: 8 WR triggers write GRF_B to row 1 of each even bank.
    bus.issue(Command(CommandType.PREA))
    bus.issue(Command(CommandType.ACT, 0, 0, row=1))
    for j in range(8):
        bus.issue(Command(CommandType.WR, 0, 0, row=1, col=j,
                          data=np.zeros(32, dtype=np.uint8)))
    bus.issue(Command(CommandType.PREA))

    # 5. Back to standard DRAM and read the results like ordinary memory.
    bus.issue(Command(CommandType.WR, 0, 0, row=mm.conf_row, col=0,
                      data=np.zeros(32, dtype=np.uint8)))
    bus.issue(Command(CommandType.ACT, 0, 0, row=mm.sbmr_row))
    bus.issue(Command(CommandType.PRE, 0, 0))
    assert channel.mode is PimMode.SB

    y = np.zeros(m, dtype=np.float32)
    for u in range(UNITS_PER_PCH):
        partials = np.stack([
            channel.banks[2 * u].peek(1, j).view(np.float16) for j in range(8)
        ])
        y[u * LANES:(u + 1) * LANES] = partials.astype(np.float32).sum(axis=0)

    gold = w.astype(np.float32) @ x.astype(np.float32)
    print(f"\nExecuted {bus.cycle} DRAM cycles, "
          f"{channel.pim_triggered_columns} PIM-triggered columns")
    print(f"max |error| vs FP32: {np.abs(y - gold).max():.2e}")
    print("\nFirst commands on the bus:")
    for cycle, cmd in bus.trace[:10]:
        print(f"  cycle {cycle:4d}: {cmd}")
    assert np.abs(y - gold).max() < 1e-2


if __name__ == "__main__":
    main()
