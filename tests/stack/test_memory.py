"""Tests for the PIM memory manager and Fig. 15 layout helpers."""

import numpy as np
import pytest

from repro.host.memmap import AddressMap
from repro.stack.memory import (
    MicrokernelCache,
    PimLayout,
    aligned_size,
    chunk_locations,
    pad_vector,
)


class TestMicrokernelCache:
    def test_caches_by_source(self):
        cache = MicrokernelCache()
        a = cache.get("EXIT")
        b = cache.get("EXIT")
        assert a is b
        assert cache.hits == 1 and cache.misses == 1

    def test_distinct_sources(self):
        cache = MicrokernelCache()
        cache.get("EXIT")
        cache.get("NOP\nEXIT")
        assert len(cache) == 2
        assert cache.misses == 2

    def test_session_skips_reprogramming(self):
        """Repeated invocations of the same operator send no CRF writes."""
        from repro.stack.kernels import GemvKernel
        from repro.stack.runtime import PimSystem

        system = PimSystem(num_pchs=1, num_rows=128)
        rng = np.random.default_rng(0)
        w = (rng.standard_normal((128, 64)) * 0.1).astype(np.float16)
        kernel = GemvKernel(system, 128, 64)
        kernel.load_weights(w)
        kernel((rng.standard_normal(64) * 0.1).astype(np.float16))
        first = system.device.pch(0).cmd_counts.copy()
        kernel((rng.standard_normal(64) * 0.1).astype(np.float16))
        second = system.device.pch(0).cmd_counts
        # The second call issues fewer extra writes than the first did in
        # total (4 CRF columns saved), and the cache records the hit.
        assert system._microkernel_cache.hits >= 1

    def test_different_kernels_reprogram(self):
        from repro.stack.runtime import PimSystem
        from repro.stack.blas import PimBlas

        system = PimSystem(num_pchs=1, num_rows=256)
        blas = PimBlas(system)
        rng = np.random.default_rng(1)
        a, b = [(rng.standard_normal(2000) * 0.1).astype(np.float16) for _ in range(2)]
        blas.add(a, b)
        blas.mul(a, b)  # different microkernel: must repopulate the CRF
        assert system._microkernel_cache.misses >= 2
        out, _ = blas.add(a, b)  # back to ADD: CRF reprogrammed correctly
        assert np.array_equal(out, (a + b).astype(np.float16))


class TestPadding:
    def test_aligned_size(self):
        assert aligned_size(128) == 128
        assert aligned_size(129) == 256
        assert aligned_size(1) == 128
        assert aligned_size(0) == 0

    def test_pad_vector(self):
        v = np.arange(130, dtype=np.float16)
        padded = pad_vector(v)
        assert padded.size == 256
        assert np.array_equal(padded[:130], v)
        assert (padded[130:] == 0).all()

    def test_pad_exact_is_copy(self):
        v = np.ones(128, dtype=np.float16)
        padded = pad_vector(v)
        assert padded is not v
        assert np.array_equal(padded, v)


class TestPimLayout:
    def test_alignment_enforced(self):
        amap = AddressMap()
        with pytest.raises(ValueError):
            PimLayout(amap, base=64, num_elements=128)

    def test_chunk_bank_locality(self):
        """The Fig. 15(a) mapping keeps every 256 B chunk in one bank row."""
        amap = AddressMap()
        layout = PimLayout(amap, base=0, num_elements=1024)
        assert layout.chunks_are_bank_local()

    def test_bank_interleaved_map_breaks_locality(self):
        """With bank bits below the column bits, chunks straddle banks and
        PIM-friendly placement is impossible without rearrangement."""
        amap = AddressMap(
            field_order=(
                "offset", "bg", "ba", "col_low", "ch", "pch", "col_high", "row",
            )
        )
        layout = PimLayout(amap, base=0, num_elements=1024)
        assert not layout.chunks_are_bank_local()

    def test_chunk_count(self):
        amap = AddressMap()
        layout = PimLayout(amap, base=0, num_elements=300)
        assert layout.padded_elements == 384
        assert layout.num_chunks == 3

    def test_consecutive_chunks_rotate_pchs(self):
        amap = AddressMap()
        layout = PimLayout(amap, base=0, num_elements=16 * 128)
        locs = chunk_locations(layout)
        pchs = [p for p, *_ in locs]
        assert pchs[:4] == [0, 1, 2, 3]

    def test_chunk_address_bounds(self):
        amap = AddressMap()
        layout = PimLayout(amap, base=0, num_elements=128)
        layout.chunk_address(0)
        with pytest.raises(IndexError):
            layout.chunk_address(1)
        with pytest.raises(IndexError):
            layout.element_address(128)

    def test_fig15_add_example(self):
        """Fig. 15(b): operands a and b at aligned bases land at the same
        in-bank coordinates of different rows (here: strided by whole
        chunks), so one lock-step command stream serves both."""
        amap = AddressMap()
        chunk = amap.pim_chunk_bytes
        a = PimLayout(amap, base=0, num_elements=2048)
        b = PimLayout(amap, base=a.num_chunks * chunk, num_elements=2048)
        addr_a = a.chunk_address(0)
        addr_b = b.chunk_address(0)
        assert addr_a.col == addr_b.col  # same column coordinates
