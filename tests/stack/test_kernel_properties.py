"""Property-based tests over kernel shapes, lengths and scheduling seeds.

The functional simulator must be bit-exact against the reference models
for *arbitrary* problem shapes — padding boundaries, partial tiles, ragged
slices — and under arbitrary in-window reordering.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.controller import SchedulerPolicy
from repro.stack.blas import (
    add_reference,
    bn_reference,
    gemv_reference,
    mul_reference,
    relu_reference,
)
from repro.stack.kernels import ElementwiseKernel, GemvKernel
from repro.stack.runtime import PimSystem


def rand(shape, seed, scale=0.2):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * scale).astype(np.float16)


class TestGemvShapeProperty:
    @given(
        m=st.integers(1, 150),
        n=st.integers(1, 96),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=12, deadline=None)
    def test_arbitrary_shapes_bit_exact(self, m, n, seed):
        system = PimSystem(num_pchs=1, num_rows=128)
        w, x = rand((m, n), seed), rand(n, seed + 1)
        kernel = GemvKernel(system, m, n)
        kernel.load_weights(w)
        y, _ = kernel(x)
        assert np.array_equal(y, gemv_reference(w, x, num_pchs=1))

    @given(
        m=st.integers(1, 140),
        n=st.integers(1, 64),
        pchs=st.integers(1, 3),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=8, deadline=None)
    def test_channel_count_irrelevant_to_result(self, m, n, pchs, seed):
        system = PimSystem(num_pchs=pchs, num_rows=128)
        w, x = rand((m, n), seed), rand(n, seed + 1)
        kernel = GemvKernel(system, m, n)
        kernel.load_weights(w)
        y, _ = kernel(x)
        # FP16 sub-accumulator structure depends on the slicing, so compare
        # against the reference with the *same* channel count...
        assert np.array_equal(y, gemv_reference(w, x, num_pchs=pchs))
        # ...and against FP32 within summation tolerance.
        gold = w.astype(np.float32) @ x.astype(np.float32)
        assert np.abs(y - gold).max() < 0.05


class TestElementwiseLengthProperty:
    @given(
        length=st.integers(1, 4000),
        op=st.sampled_from(["add", "mul"]),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=12, deadline=None)
    def test_binary_ops_exact(self, length, op, seed):
        system = PimSystem(num_pchs=1, num_rows=128)
        a, b = rand(length, seed), rand(length, seed + 1)
        out, _ = ElementwiseKernel(system, op, length)(a, b)
        ref = add_reference(a, b) if op == "add" else mul_reference(a, b)
        assert np.array_equal(out, ref)

    @given(length=st.integers(1, 4000), seed=st.integers(0, 2**16))
    @settings(max_examples=8, deadline=None)
    def test_relu_exact(self, length, seed):
        system = PimSystem(num_pchs=1, num_rows=128)
        a = rand(length, seed, scale=2.0)
        out, _ = ElementwiseKernel(system, "relu", length)(a)
        assert np.array_equal(out, relu_reference(a))

    @given(
        length=st.integers(1, 4000),
        gamma=st.floats(-2, 2),
        beta=st.floats(-1, 1),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=8, deadline=None)
    def test_bn_exact(self, length, gamma, beta, seed):
        system = PimSystem(num_pchs=1, num_rows=128)
        a = rand(length, seed)
        out, _ = ElementwiseKernel(system, "bn", length)(a, scalars=(gamma, beta))
        assert np.array_equal(out, bn_reference(a, gamma, beta))


class TestSchedulingSeedProperty:
    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_aam_immune_to_any_shuffle_seed(self, seed):
        """AAM + fences: correctness holds for every scheduler permutation."""
        system = PimSystem(
            num_pchs=1, num_rows=128,
            policy=SchedulerPolicy.SHUFFLE, scheduler_seed=seed,
            fence_penalty_cycles=0,
        )
        w, x = rand((128, 64), 7), rand(64, 8)
        kernel = GemvKernel(system, 128, 64)
        kernel.load_weights(w)
        y, _ = kernel(x)
        assert np.array_equal(y, gemv_reference(w, x, num_pchs=1))
