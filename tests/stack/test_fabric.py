"""Tests for the sharded serving fabric and the serving-tier shims.

The worker-kill conservation test is the load-bearing one: a 4-worker
fabric loses a worker to SIGKILL mid-round (after dispatch, before
collection — the most adversarial deterministic instant) and every
submitted request must still end in exactly one terminal outcome with a
bit-exact result, with the dead shard reported as quarantined.
"""

import warnings

import numpy as np
import pytest

from repro.errors import PimProgramError, PimWorkerError
from repro.obs.export import SHARD_PID_BASE, chrome_trace, validate_chrome_trace
from repro.stack import (
    PimContext,
    PimFabric,
    PimServer,
    PimSystem,
    Request,
    ServerConfig,
    SystemConfig,
    gemv_reference,
)

CONFIG = SystemConfig(num_pchs=2, num_rows=256, simulate_pchs=1, server_seed=7)
# Pin the pre-self-healing semantics for the conservation tests: a killed
# shard stays quarantined (no respawn) so replays land on survivors only.
NO_RESPAWN = ServerConfig(max_respawns=0)


def rand(shape, seed, scale=0.25):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * scale).astype(np.float16)


def gemv_stream(count, distinct, seed=7):
    """``count`` gemv Requests over ``distinct`` weight matrices."""
    rng = np.random.default_rng(seed)
    weights = [rand((16, 8), 1000 + k) for k in range(distinct)]
    arrivals = np.cumsum(rng.exponential(300.0, size=count))
    return [
        Request(
            "gemv", weights=weights[i % distinct], a=rand(8, i),
            arrival_ns=float(arrivals[i]), trace_id=f"req{i}",
        )
        for i in range(count)
    ]


def assert_bit_exact(handles):
    for handle in handles:
        golden = gemv_reference(
            handle.request.weights, handle.request.a, CONFIG.num_pchs
        )
        assert handle.result is not None
        assert np.array_equal(handle.result, golden)


class TestFabricServing:
    def test_serves_bit_exact_across_shards(self):
        items = gemv_stream(16, 4)
        with PimFabric(CONFIG, workers=2) as fabric:
            handles = [fabric.submit(r) for r in items]
            profile = fabric.run()
        assert_bit_exact(handles)
        assert all(h.outcome == "completed" for h in handles)
        assert sum(profile.outcomes().values()) == len(handles)
        assert {h.shard for h in handles} == {0, 1}

    def test_same_signature_requests_share_a_shard(self):
        items = gemv_stream(12, 3)
        with PimFabric(CONFIG, workers=3) as fabric:
            handles = [fabric.submit(r) for r in items]
            fabric.run()
        by_signature = {}
        for handle in handles:
            by_signature.setdefault(handle.request.signature, set()).add(
                handle.shard
            )
        assert all(len(shards) == 1 for shards in by_signature.values())

    def test_submit_rejects_legacy_op_string(self):
        with PimFabric(CONFIG, workers=1) as fabric:
            with pytest.raises(PimProgramError, match="takes a Request"):
                fabric.submit("gemv")

    def test_submit_after_close_rejected(self):
        fabric = PimFabric(CONFIG, workers=1)
        fabric.close()
        with pytest.raises(PimProgramError, match="closed"):
            fabric.submit(Request("relu", a=rand(8, 0)))

    def test_context_fabric_entry_point_merges_into_profiler(self):
        items = gemv_stream(8, 2)
        with PimContext(CONFIG) as ctx:
            fabric = ctx.fabric(workers=2)
            handles = [fabric.submit(r) for r in items]
            fabric.run()
            assert ctx.profiler.serving is not None
            assert ctx.profiler.serving.num_requests == len(items)
            text = "\n".join(ctx.report())
            assert "serving profile" in text
        assert_bit_exact(handles)


class TestWorkerKillConservation:
    """Satellite: SIGKILL one of four workers mid-run; nothing is lost."""

    def kill_busiest(self, fabric):
        busiest = max(
            (s for s in fabric.alive_shards() if fabric._round_assignment.get(s)),
            key=lambda s: len(fabric._round_assignment[s]),
        )
        fabric.kill_worker(busiest)
        fabric._post_dispatch_hook = None
        self.victim = busiest

    def test_every_request_exactly_one_terminal_outcome(self):
        items = gemv_stream(24, 6)
        with PimFabric(CONFIG, workers=4, server_config=NO_RESPAWN) as fabric:
            handles = [fabric.submit(r) for r in items]
            fabric._post_dispatch_hook = self.kill_busiest
            profile = fabric.run()
        assert all(h.outcome is not None for h in handles)
        assert sum(profile.outcomes().values()) == len(handles)
        assert_bit_exact(handles)
        assert fabric.quarantined_shards == (self.victim,)
        assert profile.quarantined_shards == [self.victim]
        assert profile.replays > 0
        assert any(h.replays > 0 for h in handles)
        assert all(h.shard != self.victim for h in handles)
        assert len(fabric.worker_errors) == 1
        assert isinstance(fabric.worker_errors[0], PimWorkerError)
        assert fabric.worker_errors[0].shard == self.victim

    def test_all_workers_dead_completes_on_host(self):
        items = gemv_stream(6, 2)
        with PimFabric(CONFIG, workers=2, server_config=NO_RESPAWN) as fabric:
            handles = [fabric.submit(r) for r in items]

            def kill_everything(fab):
                for shard in list(fab.alive_shards()):
                    fab.kill_worker(shard)
                fab._post_dispatch_hook = None

            fabric._post_dispatch_hook = kill_everything
            profile = fabric.run()
        assert_bit_exact(handles)
        assert all(h.outcome == "degraded_host" for h in handles)
        assert all(h.shard == -1 for h in handles)
        assert sum(profile.outcomes().values()) == len(handles)
        assert sorted(profile.quarantined_shards) == [0, 1]

    def test_replay_lands_on_survivors(self):
        items = gemv_stream(12, 4)
        with PimFabric(CONFIG, workers=3, server_config=NO_RESPAWN) as fabric:
            handles = [fabric.submit(r) for r in items]
            fabric._post_dispatch_hook = self.kill_busiest
            fabric.run()
            survivors = set(fabric.alive_shards())
        replayed = [h for h in handles if h.replays > 0]
        assert replayed
        assert all(h.shard in survivors for h in replayed)


class TestFabricTraceMerge:
    """Satellite: spans from every worker reassemble into one valid trace."""

    def run_traced(self, kill=False):
        config = CONFIG.replace(trace=True)
        items = gemv_stream(12, 4)
        fabric = PimFabric(config, workers=3)
        try:
            handles = [fabric.submit(r) for r in items]
            if kill:
                def hook(fab):
                    fab.kill_worker(fab.alive_shards()[0])
                    fab._post_dispatch_hook = None
                fabric._post_dispatch_hook = hook
            fabric.run()
        finally:
            fabric.close()
        return fabric, handles

    def test_merged_trace_validates(self):
        fabric, handles = self.run_traced()
        doc = chrome_trace(fabric.tracer)
        assert validate_chrome_trace(doc) == []

    def test_one_process_row_per_shard(self):
        fabric, handles = self.run_traced()
        doc = chrome_trace(fabric.tracer)
        span_pids = {
            e["pid"] for e in doc["traceEvents"] if e["ph"] in ("X", "i")
        }
        shards = {h.shard for h in handles}
        assert {SHARD_PID_BASE + s for s in shards} <= span_pids
        names = {
            (e["pid"], e["args"]["name"])
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        for shard in shards:
            assert (SHARD_PID_BASE + shard, f"shard{shard}") in names

    def test_trace_ids_thread_through_workers(self):
        fabric, handles = self.run_traced()
        seen = {
            span.attrs["trace_id"]
            for span in fabric.tracer.spans
            if "trace_id" in span.attrs
        }
        assert {f"req{i}" for i in range(12)} <= seen

    def test_span_ids_unique_after_multi_shard_merge(self):
        fabric, handles = self.run_traced()
        ids = [span.span_id for span in fabric.tracer.spans]
        assert len(ids) == len(set(ids))
        known = set(ids)
        assert all(
            span.parent_id is None or span.parent_id in known
            for span in fabric.tracer.spans
        )

    def test_quarantine_emits_event_and_trace_still_validates(self):
        fabric, handles = self.run_traced(kill=True)
        assert_bit_exact(handles)
        doc = chrome_trace(fabric.tracer)
        assert validate_chrome_trace(doc) == []
        assert any(
            event.name == "quarantine:shard" for event in fabric.tracer.events
        )


class TestServingDeprecationShims:
    """Satellite: the old serving call forms warn once and keep working."""

    def test_server_legacy_kwargs_warn_and_work(self):
        system = PimSystem(CONFIG)
        with pytest.warns(DeprecationWarning, match="MIGRATION"):
            server = PimServer(system, lanes=2, max_batch=4)
        assert server.server_config.lanes == 2
        assert server.server_config.max_batch == 4
        server.close()

    def test_server_config_form_does_not_warn(self):
        system = PimSystem(CONFIG)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            server = PimServer(system, ServerConfig(lanes=2))
        server.close()

    def test_server_mixing_forms_rejected(self):
        system = PimSystem(CONFIG)
        with pytest.raises(TypeError, match="not both"):
            PimServer(system, ServerConfig(), lanes=2)

    def test_server_unknown_kwargs_rejected(self):
        system = PimSystem(CONFIG)
        with pytest.raises(TypeError):
            PimServer(system, turbo=True)

    def test_submit_legacy_op_string_warns_and_matches_request_form(self):
        w, x = rand((16, 8), 0), rand(8, 1)
        system = PimSystem(CONFIG)
        with PimServer(system, ServerConfig(lanes=2)) as server:
            with pytest.warns(DeprecationWarning, match="pass a Request"):
                legacy = server.submit("gemv", weights=w, a=x)
            modern = server.submit(Request("gemv", weights=w, a=x))
            server.run()
        assert np.array_equal(legacy.result, modern.result)

    def test_submit_request_form_does_not_warn(self):
        system = PimSystem(CONFIG)
        with PimServer(system, ServerConfig(lanes=2)) as server:
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                server.submit(Request("relu", a=rand(8, 0)))
            server.run()

    def test_ctx_server_legacy_kwargs_warn(self):
        with PimContext(CONFIG) as ctx:
            with pytest.warns(DeprecationWarning, match="ServerConfig"):
                server = ctx.server(lanes=2)
            assert server.server_config.lanes == 2

    def test_legacy_and_modern_servers_serve_identically(self):
        w = rand((16, 8), 0)
        xs = [rand(8, i + 1) for i in range(4)]

        def serve(build):
            system = PimSystem(CONFIG)
            with build(system) as server:
                handles = [
                    server.submit(Request("gemv", weights=w, a=x))
                    for x in xs
                ]
                server.run()
            return [h.result for h in handles]

        with pytest.warns(DeprecationWarning):
            legacy = serve(lambda s: PimServer(s, lanes=2, max_batch=4))
        modern = serve(
            lambda s: PimServer(s, ServerConfig(lanes=2, max_batch=4))
        )
        for left, right in zip(legacy, modern):
            assert np.array_equal(left, right)


class TestSelfHealing:
    """Tentpole: the lifecycle manager respawns, rejoins, hedges, drains."""

    def kill_busiest(self, fabric):
        busiest = max(
            (s for s in fabric.alive_shards() if fabric._round_assignment.get(s)),
            key=lambda s: len(fabric._round_assignment[s]),
        )
        fabric.kill_worker(busiest)
        fabric._post_dispatch_hook = None
        self.victim = busiest

    def test_killed_shard_respawns_and_rejoins_ring(self):
        items = gemv_stream(24, 6)
        config = ServerConfig(max_respawns=1)
        with PimFabric(CONFIG, workers=2, server_config=config) as fabric:
            handles = [fabric.submit(r) for r in items]
            fabric._post_dispatch_hook = self.kill_busiest
            profile = fabric.run()
            # Capacity restored: the victim was respawned into its slot
            # and rejoined the ring within the same run.
            assert fabric.alive_shards() == [0, 1]
            assert fabric.shard_states()[self.victim] == "rejoined"
        assert_bit_exact(handles)
        assert sum(profile.outcomes().values()) == len(handles)
        assert profile.quarantined_shards == [self.victim]
        assert profile.respawns == {self.victim: 1}
        assert fabric.respawns == {self.victim: 1}
        assert profile.replays > 0
        # Nothing was forced onto the host path: the healed fleet served
        # every replay on-device.
        assert all(h.shard != -1 for h in handles)

    def test_respawn_budget_bounds_healing(self):
        items = gemv_stream(8, 2)
        config = ServerConfig(max_respawns=0)
        with PimFabric(CONFIG, workers=2, server_config=config) as fabric:
            handles = [fabric.submit(r) for r in items]
            fabric._post_dispatch_hook = self.kill_busiest
            fabric.run()
            assert self.victim not in fabric.alive_shards()
            assert fabric.respawns == {}
        assert_bit_exact(handles)

    def test_wedged_worker_detected_by_reply_timeout_watchdog(self):
        """A worker stalled past ``reply_timeout_s`` is killed, quarantined,
        its round replayed, and its slot respawned (fabric watchdog path)."""
        items = gemv_stream(12, 4)
        config = ServerConfig(
            reply_timeout_s=0.4, hedge=False, heartbeat=False, max_respawns=1
        )
        with PimFabric(CONFIG, workers=2, server_config=config) as fabric:
            assert fabric.reply_timeout_s == 0.4
            handles = [fabric.submit(r) for r in items]
            fabric.inject_worker_fault(0, {"delay_s": 5.0, "wedge": True})
            profile = fabric.run()
            assert fabric.alive_shards() == [0, 1]
        assert_bit_exact(handles)
        assert sum(profile.outcomes().values()) == len(handles)
        assert 0 in profile.quarantined_shards
        assert profile.respawns.get(0) == 1
        wedge_errors = [e for e in fabric.worker_errors if "wedged" in str(e)]
        assert wedge_errors and "reply_timeout_s" in str(wedge_errors[0])
        assert any(e.name == "wedge:shard" for e in (fabric.tracer.events if fabric.tracer else [])) or fabric.tracer is None

    def test_straggler_hedged_to_idle_survivor(self):
        """A slow (not wedged) shard's group is re-dispatched and the
        first bit-exact reply wins; the straggler survives un-quarantined."""
        items = gemv_stream(12, 4)
        config = ServerConfig(
            reply_timeout_s=30.0, heartbeat_timeout_s=10.0,
            hedge=True, hedge_min_s=0.2, hedge_factor=2.0, max_respawns=0,
        )
        with PimFabric(CONFIG, workers=2, server_config=config) as fabric:
            handles = [fabric.submit(r) for r in items]
            fabric.inject_worker_fault(0, {"delay_s": 1.5})
            profile = fabric.run()
            assert fabric.alive_shards() == [0, 1]
        assert_bit_exact(handles)
        assert sum(profile.outcomes().values()) == len(handles)
        assert profile.hedges >= 1
        assert profile.hedge_wins >= 1
        assert profile.quarantined_shards == []
        assert profile.replays == 0

    def test_heartbeat_detects_silent_death_between_rounds(self):
        config = ServerConfig(heartbeat_timeout_s=2.0, max_respawns=1)
        with PimFabric(CONFIG, workers=2, server_config=config) as fabric:
            first = [fabric.submit(r) for r in gemv_stream(8, 2)]
            fabric.run()
            fabric.kill_worker(0)  # dies silently between rounds
            second = [fabric.submit(r) for r in gemv_stream(8, 2, seed=11)]
            profile = fabric.run()
            assert fabric.alive_shards() == [0, 1]
        assert_bit_exact(first + second)
        assert any("heartbeat" in str(e) for e in fabric.worker_errors)
        assert fabric.respawns == {0: 1}
        assert profile.respawns == {0: 1}

    def test_drain_between_rounds_is_zero_loss_hot_restart(self):
        with PimFabric(CONFIG, workers=2) as fabric:
            first = [fabric.submit(r) for r in gemv_stream(8, 2)]
            fabric.run()
            fabric.drain(0)
            assert fabric.drains == 1
            assert fabric.alive_shards() == [0, 1]
            assert fabric.shard_states()[0] == "rejoined"
            second = [fabric.submit(r) for r in gemv_stream(8, 2, seed=11)]
            profile = fabric.run()
        assert_bit_exact(first + second)
        assert profile.quarantined_shards == []
        assert profile.replays == 0
        assert fabric.respawns == {}

    def test_drain_mid_round_finishes_in_flight_groups(self):
        """Draining a shard with a round in flight collects its reply
        first: in-flight groups finish, nothing is replayed."""
        items = gemv_stream(12, 4)

        def drain_busiest(fabric):
            busiest = max(
                (s for s in fabric.alive_shards()
                 if fabric._round_assignment.get(s)),
                key=lambda s: len(fabric._round_assignment[s]),
            )
            fabric.drain(busiest)
            fabric._post_dispatch_hook = None
            self.drained = busiest

        with PimFabric(CONFIG, workers=2) as fabric:
            handles = [fabric.submit(r) for r in items]
            fabric._post_dispatch_hook = drain_busiest
            profile = fabric.run()
            assert fabric.alive_shards() == [0, 1]
            assert fabric.drains == 1
        assert_bit_exact(handles)
        assert sum(profile.outcomes().values()) == len(handles)
        assert profile.replays == 0
        assert profile.quarantined_shards == []

    def test_drain_dead_shard_rejected(self):
        config = ServerConfig(max_respawns=0)
        with PimFabric(CONFIG, workers=2, server_config=config) as fabric:
            fabric.kill_worker(0)
            fabric._quarantine(0)
            with pytest.raises(PimWorkerError, match="drain"):
                fabric.drain(0)

    def test_corrupt_reply_fails_crc_and_replays(self):
        """Satellite: a worker reply corrupted in transit is caught by the
        CRC32 check, the shard quarantined, and the round replayed."""
        items = gemv_stream(12, 4)
        config = ServerConfig(max_respawns=1)
        with PimFabric(CONFIG, workers=2, server_config=config) as fabric:
            handles = [fabric.submit(r) for r in items]
            fabric.inject_worker_fault(0, {"corrupt_reply": True, "seed": 3})
            profile = fabric.run()
            assert fabric.alive_shards() == [0, 1]
        assert_bit_exact(handles)
        assert sum(profile.outcomes().values()) == len(handles)
        assert 0 in profile.quarantined_shards
        assert profile.replays > 0
        assert any("CRC32" in str(e) for e in fabric.worker_errors)

    def test_pipe_checksum_off_speaks_legacy_dialect(self):
        items = gemv_stream(8, 2)
        config = ServerConfig(pipe_checksum=False)
        with PimFabric(CONFIG, workers=2, server_config=config) as fabric:
            handles = [fabric.submit(r) for r in items]
            profile = fabric.run()
        assert_bit_exact(handles)
        assert sum(profile.outcomes().values()) == len(handles)

    def test_timeouts_thread_through_server_config(self):
        """Satellite: the historical hard-coded poll/join constants are
        now ServerConfig knobs (defaults preserved)."""
        assert ServerConfig().reply_timeout_s == 600.0
        assert ServerConfig().close_timeout_s == 10.0
        assert ServerConfig().join_timeout_s == 30.0
        config = ServerConfig(
            reply_timeout_s=1.25, close_timeout_s=2.5, join_timeout_s=3.5,
            heartbeat_timeout_s=4.5,
        )
        fabric = PimFabric(CONFIG, workers=1, server_config=config)
        try:
            assert fabric.reply_timeout_s == 1.25
            assert fabric.server_config.close_timeout_s == 2.5
            assert fabric.server_config.join_timeout_s == 3.5
            assert fabric.server_config.heartbeat_timeout_s == 4.5
        finally:
            fabric.close()
