"""Tests for the sharded serving fabric and the serving-tier shims.

The worker-kill conservation test is the load-bearing one: a 4-worker
fabric loses a worker to SIGKILL mid-round (after dispatch, before
collection — the most adversarial deterministic instant) and every
submitted request must still end in exactly one terminal outcome with a
bit-exact result, with the dead shard reported as quarantined.
"""

import warnings

import numpy as np
import pytest

from repro.errors import PimProgramError, PimWorkerError
from repro.obs.export import SHARD_PID_BASE, chrome_trace, validate_chrome_trace
from repro.stack import (
    PimContext,
    PimFabric,
    PimServer,
    PimSystem,
    Request,
    ServerConfig,
    SystemConfig,
    gemv_reference,
)

CONFIG = SystemConfig(num_pchs=2, num_rows=256, simulate_pchs=1, server_seed=7)


def rand(shape, seed, scale=0.25):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * scale).astype(np.float16)


def gemv_stream(count, distinct, seed=7):
    """``count`` gemv Requests over ``distinct`` weight matrices."""
    rng = np.random.default_rng(seed)
    weights = [rand((16, 8), 1000 + k) for k in range(distinct)]
    arrivals = np.cumsum(rng.exponential(300.0, size=count))
    return [
        Request(
            "gemv", weights=weights[i % distinct], a=rand(8, i),
            arrival_ns=float(arrivals[i]), trace_id=f"req{i}",
        )
        for i in range(count)
    ]


def assert_bit_exact(handles):
    for handle in handles:
        golden = gemv_reference(
            handle.request.weights, handle.request.a, CONFIG.num_pchs
        )
        assert handle.result is not None
        assert np.array_equal(handle.result, golden)


class TestFabricServing:
    def test_serves_bit_exact_across_shards(self):
        items = gemv_stream(16, 4)
        with PimFabric(CONFIG, workers=2) as fabric:
            handles = [fabric.submit(r) for r in items]
            profile = fabric.run()
        assert_bit_exact(handles)
        assert all(h.outcome == "completed" for h in handles)
        assert sum(profile.outcomes().values()) == len(handles)
        assert {h.shard for h in handles} == {0, 1}

    def test_same_signature_requests_share_a_shard(self):
        items = gemv_stream(12, 3)
        with PimFabric(CONFIG, workers=3) as fabric:
            handles = [fabric.submit(r) for r in items]
            fabric.run()
        by_signature = {}
        for handle in handles:
            by_signature.setdefault(handle.request.signature, set()).add(
                handle.shard
            )
        assert all(len(shards) == 1 for shards in by_signature.values())

    def test_submit_rejects_legacy_op_string(self):
        with PimFabric(CONFIG, workers=1) as fabric:
            with pytest.raises(PimProgramError, match="takes a Request"):
                fabric.submit("gemv")

    def test_submit_after_close_rejected(self):
        fabric = PimFabric(CONFIG, workers=1)
        fabric.close()
        with pytest.raises(PimProgramError, match="closed"):
            fabric.submit(Request("relu", a=rand(8, 0)))

    def test_context_fabric_entry_point_merges_into_profiler(self):
        items = gemv_stream(8, 2)
        with PimContext(CONFIG) as ctx:
            fabric = ctx.fabric(workers=2)
            handles = [fabric.submit(r) for r in items]
            fabric.run()
            assert ctx.profiler.serving is not None
            assert ctx.profiler.serving.num_requests == len(items)
            text = "\n".join(ctx.report())
            assert "serving profile" in text
        assert_bit_exact(handles)


class TestWorkerKillConservation:
    """Satellite: SIGKILL one of four workers mid-run; nothing is lost."""

    def kill_busiest(self, fabric):
        busiest = max(
            (s for s in fabric.alive_shards() if fabric._round_assignment.get(s)),
            key=lambda s: len(fabric._round_assignment[s]),
        )
        fabric.kill_worker(busiest)
        fabric._post_dispatch_hook = None
        self.victim = busiest

    def test_every_request_exactly_one_terminal_outcome(self):
        items = gemv_stream(24, 6)
        with PimFabric(CONFIG, workers=4) as fabric:
            handles = [fabric.submit(r) for r in items]
            fabric._post_dispatch_hook = self.kill_busiest
            profile = fabric.run()
        assert all(h.outcome is not None for h in handles)
        assert sum(profile.outcomes().values()) == len(handles)
        assert_bit_exact(handles)
        assert fabric.quarantined_shards == (self.victim,)
        assert profile.quarantined_shards == [self.victim]
        assert profile.replays > 0
        assert any(h.replays > 0 for h in handles)
        assert all(h.shard != self.victim for h in handles)
        assert len(fabric.worker_errors) == 1
        assert isinstance(fabric.worker_errors[0], PimWorkerError)
        assert fabric.worker_errors[0].shard == self.victim

    def test_all_workers_dead_completes_on_host(self):
        items = gemv_stream(6, 2)
        with PimFabric(CONFIG, workers=2) as fabric:
            handles = [fabric.submit(r) for r in items]

            def kill_everything(fab):
                for shard in list(fab.alive_shards()):
                    fab.kill_worker(shard)
                fab._post_dispatch_hook = None

            fabric._post_dispatch_hook = kill_everything
            profile = fabric.run()
        assert_bit_exact(handles)
        assert all(h.outcome == "degraded_host" for h in handles)
        assert all(h.shard == -1 for h in handles)
        assert sum(profile.outcomes().values()) == len(handles)
        assert sorted(profile.quarantined_shards) == [0, 1]

    def test_replay_lands_on_survivors(self):
        items = gemv_stream(12, 4)
        with PimFabric(CONFIG, workers=3) as fabric:
            handles = [fabric.submit(r) for r in items]
            fabric._post_dispatch_hook = self.kill_busiest
            fabric.run()
            survivors = set(fabric.alive_shards())
        replayed = [h for h in handles if h.replays > 0]
        assert replayed
        assert all(h.shard in survivors for h in replayed)


class TestFabricTraceMerge:
    """Satellite: spans from every worker reassemble into one valid trace."""

    def run_traced(self, kill=False):
        config = CONFIG.replace(trace=True)
        items = gemv_stream(12, 4)
        fabric = PimFabric(config, workers=3)
        try:
            handles = [fabric.submit(r) for r in items]
            if kill:
                def hook(fab):
                    fab.kill_worker(fab.alive_shards()[0])
                    fab._post_dispatch_hook = None
                fabric._post_dispatch_hook = hook
            fabric.run()
        finally:
            fabric.close()
        return fabric, handles

    def test_merged_trace_validates(self):
        fabric, handles = self.run_traced()
        doc = chrome_trace(fabric.tracer)
        assert validate_chrome_trace(doc) == []

    def test_one_process_row_per_shard(self):
        fabric, handles = self.run_traced()
        doc = chrome_trace(fabric.tracer)
        span_pids = {
            e["pid"] for e in doc["traceEvents"] if e["ph"] in ("X", "i")
        }
        shards = {h.shard for h in handles}
        assert {SHARD_PID_BASE + s for s in shards} <= span_pids
        names = {
            (e["pid"], e["args"]["name"])
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        for shard in shards:
            assert (SHARD_PID_BASE + shard, f"shard{shard}") in names

    def test_trace_ids_thread_through_workers(self):
        fabric, handles = self.run_traced()
        seen = {
            span.attrs["trace_id"]
            for span in fabric.tracer.spans
            if "trace_id" in span.attrs
        }
        assert {f"req{i}" for i in range(12)} <= seen

    def test_span_ids_unique_after_multi_shard_merge(self):
        fabric, handles = self.run_traced()
        ids = [span.span_id for span in fabric.tracer.spans]
        assert len(ids) == len(set(ids))
        known = set(ids)
        assert all(
            span.parent_id is None or span.parent_id in known
            for span in fabric.tracer.spans
        )

    def test_quarantine_emits_event_and_trace_still_validates(self):
        fabric, handles = self.run_traced(kill=True)
        assert_bit_exact(handles)
        doc = chrome_trace(fabric.tracer)
        assert validate_chrome_trace(doc) == []
        assert any(
            event.name == "quarantine:shard" for event in fabric.tracer.events
        )


class TestServingDeprecationShims:
    """Satellite: the old serving call forms warn once and keep working."""

    def test_server_legacy_kwargs_warn_and_work(self):
        system = PimSystem(CONFIG)
        with pytest.warns(DeprecationWarning, match="MIGRATION"):
            server = PimServer(system, lanes=2, max_batch=4)
        assert server.server_config.lanes == 2
        assert server.server_config.max_batch == 4
        server.close()

    def test_server_config_form_does_not_warn(self):
        system = PimSystem(CONFIG)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            server = PimServer(system, ServerConfig(lanes=2))
        server.close()

    def test_server_mixing_forms_rejected(self):
        system = PimSystem(CONFIG)
        with pytest.raises(TypeError, match="not both"):
            PimServer(system, ServerConfig(), lanes=2)

    def test_server_unknown_kwargs_rejected(self):
        system = PimSystem(CONFIG)
        with pytest.raises(TypeError):
            PimServer(system, turbo=True)

    def test_submit_legacy_op_string_warns_and_matches_request_form(self):
        w, x = rand((16, 8), 0), rand(8, 1)
        system = PimSystem(CONFIG)
        with PimServer(system, ServerConfig(lanes=2)) as server:
            with pytest.warns(DeprecationWarning, match="pass a Request"):
                legacy = server.submit("gemv", weights=w, a=x)
            modern = server.submit(Request("gemv", weights=w, a=x))
            server.run()
        assert np.array_equal(legacy.result, modern.result)

    def test_submit_request_form_does_not_warn(self):
        system = PimSystem(CONFIG)
        with PimServer(system, ServerConfig(lanes=2)) as server:
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                server.submit(Request("relu", a=rand(8, 0)))
            server.run()

    def test_ctx_server_legacy_kwargs_warn(self):
        with PimContext(CONFIG) as ctx:
            with pytest.warns(DeprecationWarning, match="ServerConfig"):
                server = ctx.server(lanes=2)
            assert server.server_config.lanes == 2

    def test_legacy_and_modern_servers_serve_identically(self):
        w = rand((16, 8), 0)
        xs = [rand(8, i + 1) for i in range(4)]

        def serve(build):
            system = PimSystem(CONFIG)
            with build(system) as server:
                handles = [
                    server.submit(Request("gemv", weights=w, a=x))
                    for x in xs
                ]
                server.run()
            return [h.result for h in handles]

        with pytest.warns(DeprecationWarning):
            legacy = serve(lambda s: PimServer(s, lanes=2, max_batch=4))
        modern = serve(
            lambda s: PimServer(s, ServerConfig(lanes=2, max_batch=4))
        )
        for left, right in zip(legacy, modern):
            assert np.array_equal(left, right)
