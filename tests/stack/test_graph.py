"""Tests for the TF-style graph framework (native path + custom ops)."""

import numpy as np
import pytest

from repro.stack.graph import (
    PIM_CUSTOM_OPS,
    PIM_ELIGIBLE_OPS,
    GraphBuilder as G,
    GraphExecutor,
    Node,
)
from repro.stack.runtime import PimSystem


@pytest.fixture(scope="module")
def system():
    return PimSystem(num_pchs=2, num_rows=256)


def rand(shape, seed, scale=0.1):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * scale).astype(np.float16)


class TestGraphConstruction:
    def test_node_names_unique(self):
        a, b = Node("add"), Node("add")
        assert a.name != b.name

    def test_toposort_orders_dependencies(self):
        x = G.placeholder("x")
        y = G.relu(x)
        z = G.add(y, x)
        executor = GraphExecutor([z])
        order = [n.name for n in executor.order]
        assert order.index(x.name) < order.index(y.name) < order.index(z.name)

    def test_cycle_detection(self):
        a = Node("add")
        b = Node("add", [a])
        a.inputs.append(b)
        with pytest.raises(ValueError):
            GraphExecutor([b])

    def test_custom_op_validation(self):
        with pytest.raises(ValueError):
            G.custom("pim_frobnicate", G.placeholder("x"))

    def test_custom_op_mapping_is_complete(self):
        assert set(PIM_ELIGIBLE_OPS.values()) == PIM_CUSTOM_OPS


class TestHostExecution:
    def test_missing_feed(self):
        x = G.placeholder("x")
        with pytest.raises(KeyError):
            GraphExecutor([x]).run({})

    def test_mlp_forward(self):
        w1, w2 = rand((32, 16), 0), rand((8, 32), 1)
        x = G.placeholder("x")
        out = G.matvec(w2, G.relu(G.matvec(w1, x)))
        feed = {"x": rand(16, 2)}
        (y,), _ = GraphExecutor([out]).run(feed)
        h = np.maximum(w1.astype(np.float32) @ feed["x"].astype(np.float32), 0)
        gold = w2.astype(np.float32) @ h
        assert np.abs(y - gold).max() < 1e-3

    def test_bn_and_mul(self):
        x = G.placeholder("x")
        out = G.mul(G.batch_norm(x, 2.0, 1.0), x)
        feed = {"x": rand(64, 3)}
        (y,), _ = GraphExecutor([out]).run(feed)
        bn = (feed["x"] * np.float16(2.0)).astype(np.float16) + np.float16(1.0)
        assert np.array_equal(y, (bn.astype(np.float16) * feed["x"]).astype(np.float16))


class TestNativeOffloadPath:
    def test_unmodified_graph_offloads(self, system):
        """The same graph runs on both backends without source changes —
        the paper's native execution path."""
        w = rand((256, 128), 4)
        x = G.placeholder("x")
        out = G.matvec(w, x)
        feed = {"x": rand(128, 5)}
        (host_y,), host_rep = GraphExecutor([out]).run(feed)
        (pim_y,), pim_rep = GraphExecutor(
            [out], backend="pim", system=system, simulate_pchs=1
        ).run(feed)
        assert host_rep.pim_launches == 0
        assert pim_rep.pim_launches == 1
        assert pim_rep.offloaded_nodes == [out.name]
        assert np.abs(host_y - pim_y).max() < 2e-3

    def test_small_ops_stay_on_host(self, system):
        w = rand((8, 8), 6)
        x = G.placeholder("x")
        out = G.matvec(w, x)
        _, report = GraphExecutor(
            [out], backend="pim", system=system, min_elements=256
        ).run({"x": rand(8, 7)})
        assert report.pim_launches == 0
        assert out.name in report.host_nodes

    def test_elementwise_offload(self, system):
        x, y = G.placeholder("x"), G.placeholder("y")
        out = G.relu(G.add(x, y))
        feed = {"x": rand(2048, 8), "y": rand(2048, 9)}
        (host_out,), _ = GraphExecutor([out]).run(feed)
        (pim_out,), report = GraphExecutor(
            [out], backend="pim", system=system, simulate_pchs=1
        ).run(feed)
        assert report.pim_launches == 2
        assert np.array_equal(
            np.asarray(host_out, np.float16), np.asarray(pim_out, np.float16)
        )

    def test_pim_backend_requires_system(self):
        with pytest.raises(ValueError):
            GraphExecutor([G.placeholder("x")], backend="pim")

    def test_bad_backend(self):
        with pytest.raises(ValueError):
            GraphExecutor([G.placeholder("x")], backend="tpu")


class TestDirectPath:
    def test_custom_op_always_offloads(self, system):
        """PIM custom ops bypass the preprocessor threshold (Fig. 7)."""
        x, y = G.placeholder("x"), G.placeholder("y")
        out = G.custom("pim_add", x, y)
        feed = {"x": rand(32, 10), "y": rand(32, 11)}  # tiny
        _, report = GraphExecutor(
            [out], backend="pim", system=system, simulate_pchs=1
        ).run(feed)
        assert report.pim_launches == 1

    def test_custom_gemv(self, system):
        w = rand((128, 64), 12)
        x = G.placeholder("x")
        out = G.custom("pim_gemv", x, w=w)
        feed = {"x": rand(64, 13)}
        (y,), report = GraphExecutor(
            [out], backend="pim", system=system, simulate_pchs=1
        ).run(feed)
        gold = w.astype(np.float32) @ feed["x"].astype(np.float32)
        assert np.abs(y - gold).max() < 1e-3


class TestSequenceOps:
    def test_last_selects_final_step(self):
        import numpy as np

        xs = G.placeholder("xs")
        out = G.last(xs)
        feed = {"xs": rand((4, 8), 30)}
        (y,), _ = GraphExecutor([out]).run(feed)
        assert np.array_equal(np.asarray(y), np.asarray(feed["xs"][-1]))

    def test_pim_elementwise_preserves_sequence_shape(self, system):
        import numpy as np

        xs = G.placeholder("xs")
        out = G.relu(xs)
        feed = {"xs": rand((4, 512), 31)}
        (y,), report = GraphExecutor(
            [out], backend="pim", system=system, simulate_pchs=1
        ).run(feed)
        assert report.pim_launches == 1
        assert np.asarray(y).shape == (4, 512)


class TestLstm:
    def test_lstm_host_vs_pim(self, system):
        T, D, H = 3, 24, 32
        w_ih, w_hh = rand((4 * H, D), 14), rand((4 * H, H), 15)
        bias = rand(4 * H, 16).astype(np.float32)
        xs = G.placeholder("xs")
        out = G.lstm(xs, w_ih, w_hh, bias)
        feed = {"xs": rand((T, D), 17)}
        (host_h,), _ = GraphExecutor([out]).run(feed)
        (pim_h,), report = GraphExecutor(
            [out], backend="pim", system=system, simulate_pchs=1, min_elements=64
        ).run(feed)
        assert report.pim_launches == 2 * T  # two GEMVs per step
        assert np.abs(
            host_h.astype(np.float32) - pim_h.astype(np.float32)
        ).max() < 5e-3
