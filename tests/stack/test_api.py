"""Tests for the redesigned submit/config surface (Request, ServerConfig)."""

import pickle

import numpy as np
import pytest

from repro.errors import PimProgramError
from repro.stack import Request, ServerConfig, request_signature
from repro.stack.runtime import SystemConfig


def rand(shape, seed, scale=0.25):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * scale).astype(np.float16)


class TestRequest:
    def test_frozen(self):
        request = Request("add", a=rand(8, 0), b=rand(8, 1))
        with pytest.raises(AttributeError):
            request.priority = 3

    def test_replace_builds_modified_copy(self):
        request = Request("add", a=rand(8, 0), b=rand(8, 1), priority=1)
        bumped = request.replace(priority=5)
        assert bumped.priority == 5
        assert request.priority == 1
        assert bumped.a is request.a

    def test_validate_accepts_all_ops(self):
        w, x = rand((16, 8), 0), rand(8, 1)
        v = rand(8, 2)
        for request in (
            Request("gemv", weights=w, a=x),
            Request("add", a=v, b=v),
            Request("mul", a=v, b=v),
            Request("relu", a=v),
            Request("bn", a=v, scalars=(1.5, -0.5)),
        ):
            assert request.validate() is request

    def test_validate_rejects_unknown_op(self):
        with pytest.raises(PimProgramError, match="unknown op"):
            Request("matmul", a=rand(8, 0)).validate()

    def test_validate_rejects_missing_operands(self):
        with pytest.raises(PimProgramError, match="gemv needs"):
            Request("gemv", a=rand(8, 0)).validate()
        with pytest.raises(PimProgramError, match="needs an input"):
            Request("relu").validate()
        with pytest.raises(PimProgramError, match="second operand"):
            Request("add", a=rand(8, 0)).validate()

    def test_pickle_round_trip_is_byte_identical(self):
        """The property the fabric depends on: a Request crosses a
        process boundary unchanged."""
        request = Request(
            "gemv", weights=rand((16, 8), 3), a=rand(8, 4),
            arrival_ns=123.0, priority=2, deadline_ns=5_000.0,
            trace_id="req42",
        )
        clone = pickle.loads(pickle.dumps(request))
        assert clone.op == request.op
        assert np.array_equal(clone.weights, request.weights)
        assert np.array_equal(clone.a, request.a)
        assert clone.arrival_ns == request.arrival_ns
        assert clone.priority == request.priority
        assert clone.deadline_ns == request.deadline_ns
        assert clone.trace_id == request.trace_id
        assert clone.signature == request.signature


class TestRequestSignature:
    def test_gemv_keys_on_weight_content_not_identity(self):
        w = rand((16, 8), 0)
        assert (
            Request("gemv", weights=w, a=rand(8, 1)).signature
            == Request("gemv", weights=w.copy(), a=rand(8, 2)).signature
        )

    def test_gemv_different_weights_different_signature(self):
        x = rand(8, 0)
        a = Request("gemv", weights=rand((16, 8), 1), a=x)
        b = Request("gemv", weights=rand((16, 8), 2), a=x)
        assert a.signature != b.signature

    def test_elementwise_keys_on_op_length_scalars(self):
        v, u = rand(8, 0), rand(8, 1)
        assert (
            Request("add", a=v, b=v).signature
            == Request("add", a=u, b=u).signature
        )
        assert (
            Request("add", a=v, b=v).signature
            != Request("mul", a=v, b=v).signature
        )
        assert (
            Request("add", a=v, b=v).signature
            != Request("add", a=rand(16, 2), b=rand(16, 3)).signature
        )
        assert (
            Request("bn", a=v, scalars=(1.0, 0.0)).signature
            != Request("bn", a=v, scalars=(2.0, 0.0)).signature
        )

    def test_signature_survives_pickling(self):
        request = Request("gemv", weights=rand((16, 8), 5), a=rand(8, 6))
        assert (
            pickle.loads(pickle.dumps(request)).signature
            == request.signature
        )

    def test_function_form_matches_property(self):
        w, x = rand((16, 8), 7), rand(8, 8)
        assert (
            request_signature("gemv", a=x, weights=w)
            == Request("gemv", weights=w, a=x).signature
        )


class TestServerConfig:
    def test_frozen_and_picklable(self):
        config = ServerConfig(lanes=4, queue_depth=16)
        with pytest.raises(AttributeError):
            config.lanes = 8
        assert pickle.loads(pickle.dumps(config)) == config

    def test_resolve_inherits_from_system_config(self):
        system_config = SystemConfig(
            queue_depth=32, admission="shed", server_seed=99,
            retry_budget=3.0,
        )
        resolved = ServerConfig().resolve(system_config)
        assert resolved.queue_depth == 32
        assert resolved.admission == "shed"
        assert resolved.seed == 99
        assert resolved.retry_budget == 3.0

    def test_explicit_knob_beats_inheritance(self):
        system_config = SystemConfig(queue_depth=32, admission="shed")
        resolved = ServerConfig(queue_depth=4, admission="degrade").resolve(
            system_config
        )
        assert resolved.queue_depth == 4
        assert resolved.admission == "degrade"

    def test_resolve_without_system_uses_historical_defaults(self):
        resolved = ServerConfig().resolve()
        assert resolved.admission == "block"
        assert resolved.retry_budget == 8.0
        assert resolved.breaker_threshold == 3
        assert resolved.seed == 0

    def test_resolve_is_idempotent(self):
        resolved = ServerConfig().resolve(SystemConfig())
        assert resolved.resolve(SystemConfig()) == resolved

    def test_replace_builds_modified_copy(self):
        config = ServerConfig(lanes=2)
        assert config.replace(lanes=6).lanes == 6
        assert config.lanes == 2
