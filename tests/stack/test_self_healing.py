"""Self-healing serving: retry, quarantine, scrub, and host fallback.

The acceptance invariant of the fault-tolerance layer: under an injected
single-channel hard failure plus random single-bit storage flips, every
submitted request still completes *bit-exactly* against the host golden
path, the profile reports what healing happened, and no channels remain
leased after ``close()``.
"""

import numpy as np
import pytest

from repro.errors import PimChannelError, PimError
from repro.faults import FaultConfig
from repro.stack.blas import (
    add_reference,
    gemv_reference,
    mul_reference,
)
from repro.stack.runtime import PimSystem, SystemConfig
from repro.stack.server import PimServer

BASE = SystemConfig(num_pchs=4, num_rows=256, simulate_pchs=1, ecc=True)


def rand(shape, seed, scale=0.25):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * scale).astype(np.float16)


def _submit_mixed(server, w, count=12, seed=3):
    """Interleaved gemv/add/mul submissions; returns (handle, golden)."""
    pairs = []
    for i in range(count):
        kind = i % 3
        if kind == 0:
            x = rand(w.shape[1], seed + 10 + i)
            handle = server.submit("gemv", weights=w, a=x)
            gold = gemv_reference(w, x, server.sys.num_pchs)
        elif kind == 1:
            a, b = rand(192, seed + 10 + i), rand(192, seed + 40 + i)
            handle = server.submit("add", a=a, b=b)
            gold = add_reference(a, b)
        else:
            a, b = rand(192, seed + 10 + i), rand(192, seed + 40 + i)
            handle = server.submit("mul", a=a, b=b)
            gold = mul_reference(a, b)
        pairs.append((handle, gold))
    return pairs


class TestAcceptance:
    def test_channel_failure_plus_bit_flips_bit_exact(self):
        """The headline scenario: one dead channel + random flips."""
        config = BASE.replace(
            faults=FaultConfig(
                bit_flip_rate=1e-4,
                check_flip_rate=1e-4,
                failed_channels=(0,),
                seed=7,
            ),
            scrub_interval=1,
        )
        system = PimSystem(config)
        server = PimServer(system, lanes=2, max_batch=4)
        pairs = _submit_mixed(server, rand((48, 80), 3))
        profile = server.run()
        server.close()

        for handle, gold in pairs:
            assert handle.result is not None
            assert np.array_equal(handle.result, gold)
        assert 0 in profile.quarantined_channels
        assert profile.retries >= 1
        assert profile.scrubs >= 1
        assert not system.driver.channels_leased
        # Quarantined ≠ leased: the dead channel is out of both pools.
        assert 0 not in system.driver.channels_free

    def test_lane_death_falls_back_to_host(self):
        """Both channels of a lane dead → whole batches served by host."""
        config = BASE.replace(
            faults=FaultConfig(failed_channels=(0, 1), seed=7)
        )
        system = PimSystem(config)
        with PimServer(system, lanes=2, max_batch=4, max_retries=1) as server:
            pairs = _submit_mixed(server, rand((48, 80), 3))
            profile = server.run()
        assert profile.fallbacks > 0
        for handle, gold in pairs:
            assert np.array_equal(handle.result, gold)
        fell_back = [h for h, _ in pairs if h.fallback]
        assert fell_back

    def test_data_error_retry_path(self):
        """Heavy flips with no scrubbing force uncorrectable retries."""
        config = BASE.replace(
            faults=FaultConfig(
                bit_flip_rate=2e-3, check_flip_rate=2e-3, seed=11
            ),
            scrub_interval=0,
        )
        system = PimSystem(config)
        with PimServer(system, lanes=2, max_batch=4) as server:
            pairs = _submit_mixed(server, rand((48, 80), 3), count=15)
            profile = server.run()
        assert profile.retries + profile.fallbacks > 0
        for handle, gold in pairs:
            assert np.array_equal(handle.result, gold)


class TestClose:
    def test_close_releases_everything_after_midbatch_crash(self):
        """A non-PIM error escapes run(); close() still frees all leases."""
        system = PimSystem(BASE)
        server = PimServer(system, lanes=2, max_batch=4)
        _submit_mixed(server, rand((48, 80), 3))

        def boom(lane, batch):
            raise RuntimeError("simulator bug")

        server._execute = boom
        with pytest.raises(RuntimeError, match="simulator bug"):
            server.run()
        server.close()
        server.close()  # idempotent
        assert not system.driver.channels_leased
        assert sorted(system.driver.channels_free) == [0, 1, 2, 3]

    def test_context_exit_with_quarantine_leaves_no_leases(self):
        config = BASE.replace(
            faults=FaultConfig(failed_channels=(2,), seed=1)
        )
        system = PimSystem(config)
        with PimServer(system, lanes=2, max_batch=4) as server:
            pairs = _submit_mixed(server, rand((48, 80), 3), count=6)
            server.run()
        assert not system.driver.channels_leased
        assert 2 in system.driver.channels_quarantined
        for handle, gold in pairs:
            assert np.array_equal(handle.result, gold)

    def test_submit_after_close_raises(self):
        system = PimSystem(BASE)
        server = PimServer(system, lanes=1, max_batch=2)
        server.close()
        with pytest.raises(PimError):
            server.submit("add", a=rand(64, 0), b=rand(64, 1))


class TestScrubbing:
    def test_scrub_between_batches_repairs_flips(self):
        config = BASE.replace(
            faults=FaultConfig(bit_flip_rate=5e-5, seed=13),
            scrub_interval=1,
        )
        system = PimSystem(config)
        with PimServer(system, lanes=2, max_batch=4) as server:
            pairs = _submit_mixed(server, rand((48, 80), 3), count=12)
            profile = server.run()
        assert profile.scrubs >= 1
        assert profile.faults_injected > 0
        assert profile.scrub_corrected + profile.ecc_corrected > 0
        for handle, gold in pairs:
            assert np.array_equal(handle.result, gold)

    def test_driver_scrub_reports_double_bit_without_raising(self):
        system = PimSystem(BASE)
        block = system.driver.alloc_rows(1)
        row = block.row(0)
        bank = system.device.pch(0).banks[0]
        data = np.arange(32, dtype=np.uint8)
        bank.poke(row, 0, data)
        bank.flip_bit(row, 0)
        bank.flip_bit(row, 1)  # two flips in one word: uncorrectable
        result = system.driver.scrub()
        assert (0, 0, row) in result.uncorrectable
        assert result.uncorrectable_words == len(result.uncorrectable)

    def test_quarantined_channels_are_skipped(self):
        system = PimSystem(BASE)
        lease = system.driver.alloc_channels(2)
        system.driver.quarantine_channels([lease.channels[0]])
        block = system.driver.alloc_rows(1)
        row = block.row(0)
        quarantined = lease.channels[0]
        bank = system.device.pch(quarantined).banks[0]
        bank.poke(row, 0, np.arange(32, dtype=np.uint8))
        bank.flip_bit(row, 3)
        before = bank.ecc_stats.corrected
        system.driver.scrub()
        assert bank.ecc_stats.corrected == before


class TestChannelRecovery:
    def test_reset_channel_clears_stranded_state(self):
        """A mid-kernel abort leaves PIM mode armed; reset disarms it."""
        system = PimSystem(BASE)
        controller = system.controllers[0]
        pch = system.device.pch(0)
        pch.pim_op_mode = 1
        controller.reset_channel()
        assert pch.pim_op_mode == 0
        for bank in pch.banks:
            assert bank.open_row is None

    def test_failed_access_names_the_channel(self):
        config = BASE.replace(faults=FaultConfig(failed_channels=(3,)))
        system = PimSystem(config)
        with pytest.raises(PimChannelError) as err:
            system.device.pch(3).banks[0].peek(0, 0)
        assert err.value.channels == (3,)
