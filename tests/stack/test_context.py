"""The PimContext API surface: config presets, report modes, shims, caches."""

import warnings

import numpy as np
import pytest

from repro.stack.blas import PimBlas, gemv_reference
from repro.stack.context import PimContext
from repro.stack.profiler import Profiler, RequestStats, ServingProfile
from repro.stack.runtime import PimSystem, SystemConfig


def rand(shape, seed, scale=0.25):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * scale).astype(np.float16)


class TestSystemConfig:
    def test_presets(self):
        fast = SystemConfig.fast_functional()
        assert fast.num_pchs == 4 and fast.simulate_pchs == 1
        paper = SystemConfig.paper_scale()
        assert paper.num_pchs == 16 and paper.num_rows == 8192

    def test_preset_overrides(self):
        config = SystemConfig.fast_functional(num_pchs=2, refresh=True)
        assert config.num_pchs == 2 and config.refresh
        assert config.simulate_pchs == 1  # preset default survives

    def test_replace_is_pure(self):
        base = SystemConfig()
        other = base.replace(ecc=True)
        assert other.ecc and not base.ecc

    def test_paper_scale_constructs_cheaply(self):
        # 8192 rows/bank are backed sparsely; assembly must be instant.
        system = PimSystem(SystemConfig.paper_scale())
        assert system.num_pchs == 16


class TestDeprecationShim:
    def test_legacy_kwargs_still_work_with_warning(self):
        with pytest.warns(DeprecationWarning):
            system = PimSystem(num_pchs=2, num_rows=128)
        assert system.num_pchs == 2
        assert system.config.num_rows == 128

    def test_legacy_positional_channel_count(self):
        with pytest.warns(DeprecationWarning):
            system = PimSystem(2)
        assert system.num_pchs == 2

    def test_config_form_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            system = PimSystem(SystemConfig(num_pchs=2, num_rows=128))
        assert system.num_pchs == 2

    def test_mixing_forms_rejected(self):
        with pytest.raises(TypeError):
            PimSystem(SystemConfig(), num_pchs=2)

    def test_unknown_kwargs_rejected(self):
        with pytest.raises(TypeError):
            PimSystem(channels=2)

    def test_legacy_and_config_build_identical_systems(self):
        w, x = rand((32, 48), 0), rand(48, 1)
        with pytest.warns(DeprecationWarning):
            legacy = PimSystem(num_pchs=2, num_rows=128)
        modern = PimSystem(SystemConfig(num_pchs=2, num_rows=128))
        y_legacy, _ = PimBlas(legacy, simulate_pchs=1).gemv(w, x)
        y_modern, _ = PimBlas(modern, simulate_pchs=1).gemv(w, x)
        assert np.array_equal(y_legacy, y_modern)


class TestReportModes:
    def test_attach_mode_returns_tuples(self):
        blas = PimBlas(PimSystem(SystemConfig.fast_functional()))
        y, report = blas.gemv(rand((32, 48), 0), rand(48, 1))
        assert report.kernel.startswith("gemv")

    def test_profile_mode_returns_results_and_records(self):
        profiler = Profiler()
        blas = PimBlas(
            PimSystem(SystemConfig.fast_functional()),
            simulate_pchs=1,
            reports="profile",
            profiler=profiler,
        )
        w, x = rand((32, 48), 0), rand(48, 1)
        y = blas.gemv(w, x)
        assert isinstance(y, np.ndarray)
        assert np.array_equal(y, gemv_reference(w, x, num_pchs=4))
        s = blas.add(x, x)
        assert isinstance(s, np.ndarray)
        h, c = blas.lstm_cell(
            rand((32, 48), 2), rand((32, 8), 3), np.zeros(32, np.float16),
            x, np.zeros(8, np.float16), np.zeros(8, np.float16),
        )
        assert h.shape == (8,) and c.shape == (8,)
        kernels = profiler.profile.kernels
        assert any(name.startswith("gemv") for name in kernels)
        assert any(name.startswith("add") for name in kernels)

    def test_profile_mode_requires_sink(self):
        with pytest.raises(ValueError):
            PimBlas(PimSystem(SystemConfig.fast_functional()), reports="profile")

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            PimBlas(PimSystem(SystemConfig.fast_functional()), reports="stream")


class TestPimContext:
    def test_context_serves_and_reports(self):
        w = rand((32, 48), 0)
        with PimContext(SystemConfig.fast_functional()) as ctx:
            y = ctx.blas.gemv(w, rand(48, 1))
            assert isinstance(y, np.ndarray)
            with ctx.server(lanes=2, max_batch=4) as server:
                for i in range(4):
                    server.submit("gemv", weights=w, a=rand(48, i + 2))
                profile = server.run()
            assert profile.num_requests == 4
            lines = ctx.report()
            text = "\n".join(lines)
            assert "kernel profile" in text and "serving profile" in text

    def test_context_releases_server_lanes_on_exit(self):
        with PimContext(SystemConfig.fast_functional()) as ctx:
            ctx.server(lanes=2)
            system = ctx.system
            assert len(system.driver.channels_free) == 0
        assert len(system.driver.channels_free) == system.num_pchs

    def test_attach_mode_context(self):
        ctx = PimContext(SystemConfig.fast_functional(), reports="attach")
        y, report = ctx.blas.gemv(rand((32, 48), 0), rand(48, 1))
        assert report.cycles > 0


class TestOperatorCacheBounds:
    def test_elementwise_cache_keyed_by_scalars(self):
        """Two BN operators with different (gamma, beta) never share SRFs."""
        system = PimSystem(SystemConfig.fast_functional())
        k1 = system.executor.elementwise_operator("bn", 64, scalars=(1.5, 0.5))
        k2 = system.executor.elementwise_operator("bn", 64, scalars=(2.0, 0.0))
        assert k1 is not k2
        again = system.executor.elementwise_operator("bn", 64, scalars=(1.5, 0.5))
        assert again is k1

    def test_bn_results_correct_across_scalar_variants(self):
        system = PimSystem(SystemConfig.fast_functional())
        blas = PimBlas(system, simulate_pchs=1)
        a = rand(96, 0)
        y1, _ = blas.bn(a, 1.5, 0.5)
        y2, _ = blas.bn(a, 2.0, -1.0)
        y1_again, _ = blas.bn(a, 1.5, 0.5)
        ref1 = ((a * np.float16(1.5)).astype(np.float16) + np.float16(0.5)).astype(np.float16)
        ref2 = ((a * np.float16(2.0)).astype(np.float16) + np.float16(-1.0)).astype(np.float16)
        assert np.array_equal(y1, ref1)
        assert np.array_equal(y2, ref2)
        assert np.array_equal(y1_again, ref1)

    def test_lru_eviction_returns_rows(self):
        config = SystemConfig.fast_functional(elementwise_cache_size=2)
        system = PimSystem(config)
        executor = system.executor
        free_before = system.driver.rows_free
        k1 = executor.elementwise_operator("add", 64)
        executor.elementwise_operator("add", 128)
        executor.elementwise_operator("add", 192)  # evicts k1
        assert executor.evictions == 1
        assert len(executor._elementwise_cache) == 2
        with pytest.raises(RuntimeError):
            k1(rand(64, 0), rand(64, 1))
        # A fresh same-shape operator can be rebuilt and still fits.
        rebuilt = executor.elementwise_operator("add", 64)
        y, _ = rebuilt(rand(64, 0), rand(64, 1), simulate_pchs=1)
        assert y.shape == (64,)
        assert system.driver.rows_free <= free_before

    def test_lru_touch_order(self):
        config = SystemConfig.fast_functional(gemv_cache_size=2)
        system = PimSystem(config)
        executor = system.executor
        w1, w2, w3 = rand((16, 16), 1), rand((16, 16), 2), rand((16, 16), 3)
        k1 = executor.gemv_operator(w1)
        executor.gemv_operator(w2)
        executor.gemv_operator(w1)  # touch: w1 becomes most recent
        executor.gemv_operator(w3)  # evicts w2, not w1
        assert executor.gemv_operator(w1) is k1
        assert executor.evictions == 1


class TestServingProfileMath:
    def test_percentile_and_throughput(self):
        profile = ServingProfile()
        for i in range(10):
            profile.record(
                RequestStats(
                    request_id=i,
                    op="gemv",
                    arrival_ns=0.0,
                    start_ns=float(i),
                    finish_ns=float(i) + 100.0,
                )
            )
        profile.batches = 2
        assert profile.num_requests == 10
        assert profile.mean_batch_size() == 5
        assert profile.makespan_ns == 109.0
        assert profile.throughput_rps() == pytest.approx(10 / 109e-9)
        assert profile.p95_turnaround_ns() >= profile.mean_turnaround_ns()

    def test_occupancy_bounded(self):
        profile = ServingProfile(
            makespan_cycles=100, channel_busy_cycles={0: 50, 1: 120}
        )
        occ = profile.channel_occupancy()
        assert occ[0] == pytest.approx(0.5)
        assert occ[1] == 1.0  # clamped

    def test_profiler_merges_serving_sessions(self):
        profiler = Profiler()
        first = ServingProfile(
            makespan_cycles=10,
            batches=1,
            launches=1,
            channel_busy_cycles={0: 8},
        )
        second = ServingProfile(
            makespan_cycles=20,
            batches=2,
            launches=2,
            channel_busy_cycles={0: 10},
        )
        profiler.record_serving(first)
        profiler.record_serving(second)
        assert profiler.serving.batches == 3
        # Sequential sessions: busy cycles AND the makespan denominator
        # both add, so merged occupancy stays an honest average.
        assert profiler.serving.makespan_cycles == 30
        assert profiler.serving.channel_occupancy()[0] == pytest.approx(
            18 / 30
        )
