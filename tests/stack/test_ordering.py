"""The Fig. 5 / Section IV-C ordering study.

Modern controllers reorder DRAM commands; a PIM microkernel whose
instructions are implicitly bound to column addresses breaks unless either
(a) the program uses address-aligned mode, which re-derives register
indices from the address bits, or (b) the stream is fenced/in-order.

These tests reproduce all three outcomes on the functional simulator with
an adversarial (seeded shuffle) scheduler.
"""

import numpy as np
import pytest

from repro.dram.controller import SchedulerPolicy
from repro.stack.blas import gemv_reference
from repro.stack.kernels import GemvKernel
from repro.stack.runtime import PimSystem


def _run_gemv(policy, seed=None, microkernel=None, fences=True):
    system = PimSystem(
        num_pchs=1, num_rows=128, policy=policy,
        scheduler_seed=seed, fence_penalty_cycles=0,
    )
    rng = np.random.default_rng(42)
    m, n = 128, 64
    w = (rng.standard_normal((m, n)) * 0.25).astype(np.float16)
    x = (rng.standard_normal(n) * 0.25).astype(np.float16)
    kernel = GemvKernel(system, m, n)
    if microkernel is not None:
        kernel.MICROKERNEL = microkernel
    if not fences:
        _strip_fences(system)
    kernel.load_weights(w)
    y, _ = kernel(x)
    return y, gemv_reference(w, x, num_pchs=1)


def _strip_fences(system):
    for mc in system.controllers:
        mc.fence = lambda: None


# A functionally equivalent microkernel WITHOUT address-aligned mode: it
# walks the 8 registers with explicitly numbered instructions, so it only
# works if commands arrive exactly in program order.
NON_AAM_MICROKERNEL = "\n".join(
    [f"MOV GRF_A[{i}], HOST" for i in range(8)]
    + [f"MAC GRF_B[{i}], EVEN_BANK, GRF_A[{i}]" for i in range(8)]
    + ["JUMP -16, {reps}"]
    + [f"MOV EVEN_BANK[{i}], GRF_B[{i}]" for i in range(8)]
    + ["EXIT"]
)


class TestOrderingStudy:
    def test_aam_survives_frfcfs(self):
        y, ref = _run_gemv(SchedulerPolicy.FRFCFS)
        assert np.array_equal(y, ref)

    def test_aam_survives_adversarial_shuffle(self):
        """AAM tolerates arbitrary reordering inside the fence window."""
        for seed in range(5):
            y, ref = _run_gemv(SchedulerPolicy.SHUFFLE, seed=seed)
            assert np.array_equal(y, ref), f"seed {seed}"

    def test_non_aam_correct_in_order(self):
        """With a strictly in-order controller, explicit indices also work
        (the paper's 'processor preserves order in PIM mode' study)."""
        y, ref = _run_gemv(SchedulerPolicy.FCFS, microkernel=NON_AAM_MICROKERNEL)
        assert np.array_equal(y, ref)

    def test_non_aam_breaks_under_reordering(self):
        """Without AAM, a reordering scheduler mismatches column addresses
        and instructions: the Fig. 5(c) failure."""
        broken = 0
        for seed in range(5):
            y, ref = _run_gemv(
                SchedulerPolicy.SHUFFLE, seed=seed, microkernel=NON_AAM_MICROKERNEL
            )
            if not np.array_equal(y, ref):
                broken += 1
        assert broken > 0

    def test_aam_breaks_without_fences_under_shuffle(self):
        """AAM covers only an 8-register window: removing the fences lets
        commands cross window boundaries and corrupts the result (why the
        host must barrier every 8 commands, Section VII-B)."""
        from repro.pim.exec_unit import PimProgramError

        broken = 0
        for seed in range(5):
            try:
                y, ref = _run_gemv(SchedulerPolicy.SHUFFLE, seed=seed, fences=False)
            except PimProgramError:
                # Reordered WR/RD triggers hit instructions whose datapath
                # they cannot drive — also a functional failure.
                broken += 1
                continue
            if not np.array_equal(y, ref):
                broken += 1
        assert broken > 0

    def test_fcfs_without_fences_is_safe(self):
        """An in-order controller needs no fences at all — the basis of the
        paper's fence-free performance projection."""
        y, ref = _run_gemv(SchedulerPolicy.FCFS, fences=False)
        assert np.array_equal(y, ref)
