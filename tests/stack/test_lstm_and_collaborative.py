"""Tests for the fused LSTM operator and collaborative GEMV (Section VIII)."""

import numpy as np
import pytest

from repro.stack.collaborative import CollaborativeGemv, optimal_split
from repro.stack.lstm import LstmLayerOperator
from repro.stack.runtime import PimSystem


def rand(shape, seed, scale=0.1):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * scale).astype(np.float16)


@pytest.fixture(scope="module")
def system():
    return PimSystem(num_pchs=2, num_rows=256)


class TestLstmLayerOperator:
    def _make(self, system, d=32, h=48, seed=0):
        op = LstmLayerOperator(system, d, h, simulate_pchs=1)
        w_ih = rand((4 * h, d), seed)
        w_hh = rand((4 * h, h), seed + 1)
        bias = rand(4 * h, seed + 2).astype(np.float32)
        op.load_weights(w_ih, w_hh, bias)
        return op, w_ih, w_hh, bias

    def test_matches_fp32_reference(self, system):
        op, w_ih, w_hh, bias = self._make(system)
        xs = rand((5, 32), 10)
        out, report, steps = op(xs)
        ref = op.reference(w_ih, w_hh, bias, xs)
        assert out.shape == (5, 48)
        assert np.abs(out.astype(np.float32) - ref).max() < 1e-2
        assert len(steps) == 5
        assert report.pim_flops > 0

    def test_single_launch_accounting(self, system):
        """The fused layer charges one kernel launch, not 2T."""
        op, *_ = self._make(system, seed=20)
        xs = rand((4, 32), 21)
        _, report, _ = op(xs)
        raw_launches_ns = 2 * 4 * system.host.kernel_launch_ns
        assert report.ns < report.cycles * system.tck_ns + raw_launches_ns

    def test_initial_state(self, system):
        op, w_ih, w_hh, bias = self._make(system, seed=30)
        xs = rand((2, 32), 31)
        h0 = rand(48, 32)
        out_with, _, _ = op(xs, h0=h0)
        out_without, _, _ = op(xs)
        assert not np.array_equal(out_with, out_without)

    def test_shape_validation(self, system):
        op = LstmLayerOperator(system, 32, 48)
        with pytest.raises(RuntimeError):
            op(rand((2, 32), 0))
        with pytest.raises(ValueError):
            op.load_weights(rand((10, 10), 0), rand((10, 10), 1), rand(10, 2))

    def test_step_reports_are_uniform(self, system):
        op, *_ = self._make(system, seed=40)
        _, _, steps = op(rand((3, 32), 41))
        commands = {s.column_commands for s in steps}
        assert len(commands) == 1  # identical work per step


class TestBatchedGemv:
    def test_batched_matches_sequential(self, system):
        from repro.stack.kernels import GemvKernel

        w = rand((128, 64), 50)
        kernel = GemvKernel(system, 128, 64)
        kernel.load_weights(w)
        xs = rand((3, 64), 51)
        ys, merged = kernel.batched(xs, simulate_pchs=1)
        for b in range(3):
            y, _ = kernel(xs[b], simulate_pchs=1)
            assert np.array_equal(ys[b], y)
        assert merged.kernel.endswith("xB3")

    def test_batched_cycles_scale_linearly(self, system):
        from repro.stack.kernels import GemvKernel

        w = rand((128, 64), 52)
        kernel = GemvKernel(system, 128, 64)
        kernel.load_weights(w)
        _, one = kernel.batched(rand((1, 64), 53), simulate_pchs=1)
        _, three = kernel.batched(rand((3, 64), 54), simulate_pchs=1)
        assert three.cycles == pytest.approx(3 * one.cycles, rel=0.1)

    def test_batched_shape_validation(self, system):
        from repro.stack.kernels import GemvKernel

        kernel = GemvKernel(system, 128, 64)
        kernel.load_weights(rand((128, 64), 55))
        with pytest.raises(ValueError):
            kernel.batched(rand((2, 65), 56))


class TestCollaborativeGemv:
    def test_numerically_correct(self, system):
        m, n = 384, 128
        w = rand((m, n), 60)
        x = rand(n, 61)
        collab = CollaborativeGemv(system, m, n, pim_rows=128, simulate_pchs=1)
        collab.load_weights(w)
        y, report = collab(x)
        gold = w.astype(np.float32) @ x.astype(np.float32)
        assert np.abs(y - gold).max() < 2e-3
        assert report.pim_rows == 128
        assert report.host_rows == 256

    def test_pure_pim_and_pure_host_edges(self, system):
        m, n = 256, 64
        w = rand((m, n), 62)
        x = rand(n, 63)
        gold = w.astype(np.float32) @ x.astype(np.float32)
        for rows in (0, m):
            collab = CollaborativeGemv(system, m, n, pim_rows=rows, simulate_pchs=1)
            collab.load_weights(w)
            y, report = collab(x)
            assert np.abs(y - gold).max() < 2e-3
            if rows == 0:
                assert report.pim_ns == 0.0
            else:
                assert report.host_ns == 0.0

    def test_batch1_optimum_is_all_pim(self):
        """At batch 1 PIM dominates (11x): the best split is everything on
        PIM — collaboration pays off only near the crossover."""
        rows = optimal_split(8192, 4096, batch=1)
        # (the host may pick up a residual tile or two "for free" under
        # its fixed launch overhead)
        assert rows >= 8192 - 256

    def test_crossover_batch_optimal_split_beats_edges(self):
        """Around the Fig. 10 crossover (batch ~3) the sides are comparable
        and max(pim, host) at the optimal split beats either pure side —
        the future-work claim quantified."""
        m, n = 8192, 4096
        sweep = CollaborativeGemv.sweep_split(m, n, batch=3, points=17)
        best_rows = min(sweep, key=sweep.get)
        assert 0 < best_rows < m
        assert sweep[best_rows] < 0.95 * sweep[0]  # beats pure host
        assert sweep[best_rows] < 0.95 * sweep[max(sweep)]  # beats pure PIM

    def test_optimal_split_balances_sides_at_crossover(self):
        m, n, batch = 8192, 4096, 3
        rows = optimal_split(m, n, batch=batch)
        assert 0 < rows < m
        from repro.perf.latency import LatencyModel, PIM_HBM, PROC_HBM

        pim_ns = LatencyModel(PIM_HBM).pim_gemv(rows, n, batch).ns
        host_ns = LatencyModel(PROC_HBM).host_gemv(m - rows, n, batch).ns
        assert min(pim_ns, host_ns) / max(pim_ns, host_ns) > 0.6

    def test_snaps_to_tile_granularity(self, system):
        collab = CollaborativeGemv(system, 512, 64, pim_rows=100)
        assert collab.pim_rows % 128 == 0
