"""Tests for the shard-side worker loop, driven in-process over a pipe.

:func:`repro.stack.worker.run_worker` only touches the connection's
``recv``/``send`` surface, so these tests run it on a plain thread over a
local ``multiprocessing.Pipe`` pair — same code path the fabric spawns in
a child process, but visible to the coverage tracer and debuggable.
"""

import multiprocessing
import threading

import numpy as np
import pytest

from repro.stack import Request, ServerConfig, SystemConfig, gemv_reference
from repro.stack.context import PimContext
from repro.stack.worker import run_worker, serve_round


def rand(shape, seed, scale=0.25):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * scale).astype(np.float16)


CONFIG = SystemConfig(num_pchs=2, num_rows=256, simulate_pchs=1)
SERVER_CONFIG = ServerConfig(lanes=2, max_batch=4)


@pytest.fixture()
def worker():
    """``run_worker`` on a thread; yields the router's end of the pipe."""
    router_end, worker_end = multiprocessing.Pipe()
    thread = threading.Thread(
        target=run_worker, args=(worker_end, CONFIG, SERVER_CONFIG, 3),
        daemon=True,
    )
    thread.start()
    yield router_end
    try:
        router_end.send(("close",))
        if router_end.poll(10.0):
            router_end.recv()
    except (OSError, BrokenPipeError):
        pass
    router_end.close()
    thread.join(timeout=10.0)
    assert not thread.is_alive()


class TestWorkerProtocol:
    def test_ping_pong(self, worker):
        worker.send(("ping",))
        assert worker.recv() == ("pong", 3)

    def test_serve_round_trip_bit_exact(self, worker):
        w = rand((16, 8), 0)
        items = [
            (rid, Request("gemv", weights=w, a=rand(8, rid + 1)))
            for rid in (10, 11, 12)
        ]
        worker.send(("serve", items))
        kind, payload = worker.recv()
        assert kind == "result"
        assert payload["shard"] == 3
        assert set(payload["results"]) == {10, 11, 12}
        assert payload["submit_errors"] == {}
        for rid, request in items:
            golden = gemv_reference(request.weights, request.a, CONFIG.num_pchs)
            assert np.array_equal(payload["results"][rid], golden)
            assert payload["outcomes"][rid] == "completed"

    def test_profile_speaks_fabric_ids(self, worker):
        """Request ids and channels come back in the fabric's id spaces."""
        w = rand((16, 8), 0)
        worker.send(("serve", [(77, Request("gemv", weights=w, a=rand(8, 1)))]))
        _, payload = worker.recv()
        profile = payload["profile"]
        assert [s.request_id for s in profile.requests] == [77]
        assert all(s.shard == 3 for s in profile.requests)
        base = 3 * CONFIG.num_pchs
        assert all(
            base <= channel < base + CONFIG.num_pchs
            for channel in profile.channel_busy_cycles
        )

    def test_submit_errors_reported_per_rid(self, worker):
        """A request the shard refuses comes back in submit_errors, not
        as a crash — the router owes it a host completion."""
        good = Request("gemv", weights=rand((16, 8), 0), a=rand(8, 1))
        bad = Request("gemv")  # validate() fails: no operands
        worker.send(("serve", [(0, good), (1, bad)]))
        kind, payload = worker.recv()
        assert kind == "result"
        assert 0 in payload["results"]
        assert set(payload["submit_errors"]) == {1}
        assert 1 not in payload["outcomes"]

    def test_kill_drops_connection_without_reply(self, worker):
        worker.send(("kill",))
        # The worker dies without a goodbye: the next read hits EOF (the
        # pipe reports readable, then recv raises), never a reply tuple.
        assert worker.poll(10.0)
        with pytest.raises((EOFError, OSError)):
            worker.recv()

    def test_unknown_message_reports_error(self, worker):
        worker.send(("frobnicate",))
        kind, body = worker.recv()
        assert kind == "error"
        assert "frobnicate" in body


class TestServeRoundTracing:
    def test_spans_are_shard_tagged_and_rid_rewritten(self):
        config = CONFIG.replace(trace=True)
        with PimContext(config) as ctx:
            server = ctx.server(SERVER_CONFIG)
            w = rand((16, 8), 0)
            items = [
                (500, Request("gemv", weights=w, a=rand(8, 1),
                              trace_id="req500")),
                (501, Request("gemv", weights=w, a=rand(8, 2),
                              trace_id="req501")),
            ]
            payload = serve_round(ctx, server, 2, items)
            assert payload["spans"], "traced round must ship spans"
            assert all(span.shard == 2 for span in payload["spans"])
            rids = {
                span.attrs["request_id"]
                for span in payload["spans"]
                if "request_id" in span.attrs
            }
            assert rids <= {500, 501}
            trace_ids = {
                span.attrs.get("trace_id")
                for span in payload["spans"]
                if "trace_id" in span.attrs
            }
            assert trace_ids == {"req500", "req501"}
            # The round ships-and-forgets: the local tracer is reset so
            # the next round's span ids restart at 1.
            assert ctx.tracer.spans == []
            assert ctx.tracer.events == []


class TestWorkerChecksumProtocol:
    """Satellite: CRC32-framed serve/result payloads and chaos control."""

    @staticmethod
    def wire(items):
        import pickle
        import zlib

        blob = pickle.dumps(items, protocol=pickle.HIGHEST_PROTOCOL)
        return ("serve", zlib.crc32(blob), blob)

    @staticmethod
    def gemv_items(rids):
        w = rand((16, 8), 0)
        return [
            (rid, Request("gemv", weights=w, a=rand(8, rid + 1)))
            for rid in rids
        ]

    def test_crc_framed_round_trip_bit_exact(self, worker):
        import pickle
        import zlib

        items = self.gemv_items((20, 21))
        worker.send(self.wire(items))
        message = worker.recv()
        # CRC dispatch earns a CRC reply (the worker answers in kind).
        assert message[0] == "result" and len(message) == 3
        _, crc, blob = message
        assert zlib.crc32(blob) == crc
        payload = pickle.loads(blob)
        for rid, request in items:
            golden = gemv_reference(request.weights, request.a, CONFIG.num_pchs)
            assert np.array_equal(payload["results"][rid], golden)

    def test_corrupted_dispatch_detected_not_served(self, worker):
        import pickle
        import zlib

        items = self.gemv_items((30,))
        blob = pickle.dumps(items, protocol=pickle.HIGHEST_PROTOCOL)
        corrupted = bytearray(blob)
        corrupted[len(corrupted) // 2] ^= 0x40
        worker.send(("serve", zlib.crc32(blob), bytes(corrupted)))
        kind, body = worker.recv()
        assert kind == "error"
        assert "CRC32" in body

    def test_chaos_corrupt_reply_fails_router_checksum(self, worker):
        import zlib

        worker.send(("chaos", {"corrupt_reply": True, "seed": 1}))
        assert worker.recv() == ("chaos-ok", 3)
        worker.send(self.wire(self.gemv_items((40,))))
        message = worker.recv()
        assert message[0] == "result" and len(message) == 3
        _, crc, blob = message
        # The blob was corrupted *after* checksumming: the CRC must not
        # match, which is exactly what the router's verification catches.
        assert zlib.crc32(blob) != crc
        # One-shot fault: the next round is clean again.
        worker.send(self.wire(self.gemv_items((41,))))
        _, crc, blob = worker.recv()
        assert zlib.crc32(blob) == crc

    def test_chaos_delay_stalls_next_serve_only(self, worker):
        import time

        worker.send(("chaos", {"delay_s": 0.2}))
        assert worker.recv() == ("chaos-ok", 3)
        t0 = time.monotonic()
        worker.send(("serve", self.gemv_items((50,))))
        kind, _ = worker.recv()
        assert kind == "result"
        assert time.monotonic() - t0 >= 0.2
        t0 = time.monotonic()
        worker.send(("serve", self.gemv_items((51,))))
        worker.recv()
        assert time.monotonic() - t0 < 0.2

    def test_chaos_bad_spec_reports_error(self, worker):
        worker.send(("chaos", {"fail_channel": 99}))
        kind, body = worker.recv()
        assert kind == "error"
        assert "channel" in body.lower()
