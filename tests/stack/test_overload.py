"""Overload protection: admission, deadlines, priorities, budgets, breakers.

The tentpole invariant is *conservation*: every submitted request ends in
exactly one terminal :class:`~repro.stack.server.RequestOutcome`, requests
that are shed or expired cost zero device time (and never touch the
channel-occupancy accounting), and everything that completes — on the
device or degraded to the host — is bit-exact against the golden path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PimDataError, PimOverloadError, PimProgramError
from repro.faults import FaultConfig
from repro.stack.blas import add_reference, gemv_reference, mul_reference
from repro.stack.context import PimContext
from repro.stack.runtime import PimSystem, SystemConfig
from repro.stack.server import (
    ADMISSION_POLICIES,
    PimServer,
    RequestOutcome,
)

PLAIN = SystemConfig(num_pchs=4, num_rows=256, simulate_pchs=1)


def rand(shape, seed, scale=0.25):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * scale).astype(np.float16)


def _assert_conserved(handles, profile):
    """Every request has exactly one terminal outcome; counts add up."""
    assert all(h.outcome is not None for h in handles)
    assert profile.num_requests == len(handles)
    assert sum(profile.outcomes().values()) == len(handles)


def _assert_zero_device_time(handle):
    """A dropped request must not have consumed simulated device time."""
    assert handle.service_ns == 0.0
    assert handle.batch_size == 0
    assert handle.result is None


class TestAdmissionBlock:
    def test_block_raises_once_lane_is_full(self):
        system = PimSystem(PLAIN)
        with PimServer(
            system, lanes=1, queue_depth=2, admission="block"
        ) as server:
            a, b = rand(128, 0), rand(128, 1)
            server.submit("add", a=a, b=b)
            server.submit("add", a=a, b=b)
            with pytest.raises(PimOverloadError) as excinfo:
                server.submit("add", a=a, b=b)
            assert excinfo.value.lane == 0

    def test_block_rejection_reserves_no_request_id(self):
        system = PimSystem(PLAIN)
        with PimServer(
            system, lanes=1, queue_depth=1, admission="block"
        ) as server:
            a, b = rand(128, 0), rand(128, 1)
            first = server.submit("add", a=a, b=b)
            with pytest.raises(PimOverloadError):
                server.submit("add", a=a, b=b)
            retry = None
            profile = server.run()
            # run() drained the lane: the producer can resubmit now.
            retry = server.submit("add", a=a, b=b)
            profile = server.run()
        assert retry.request_id == first.request_id + 1
        assert retry.outcome is RequestOutcome.COMPLETED

    def test_zero_queue_depth_means_unbounded(self):
        config = PLAIN.replace(queue_depth=2, admission="block")
        system = PimSystem(config)
        with PimServer(system, lanes=1, queue_depth=0) as server:
            a, b = rand(128, 0), rand(128, 1)
            handles = [server.submit("add", a=a, b=b) for _ in range(16)]
            profile = server.run()
        _assert_conserved(handles, profile)
        assert profile.rejected == 0

    def test_invalid_admission_policy_rejected(self):
        system = PimSystem(PLAIN)
        with pytest.raises(PimProgramError):
            PimServer(system, admission="drop-everything")
        assert "drop-everything" not in ADMISSION_POLICIES


class TestAdmissionShed:
    def test_excess_arrivals_shed_with_error_attached(self):
        system = PimSystem(PLAIN)
        with PimServer(
            system, lanes=1, max_batch=4, queue_depth=2, admission="shed"
        ) as server:
            a, b = rand(128, 0), rand(128, 1)
            handles = [
                server.submit("add", a=a, b=b, arrival_ns=0.0)
                for _ in range(6)
            ]
            profile = server.run()
        _assert_conserved(handles, profile)
        kept = [h for h in handles if h.outcome is RequestOutcome.COMPLETED]
        shed = [h for h in handles if h.outcome is RequestOutcome.REJECTED]
        assert len(kept) == 2 and len(shed) == 4
        assert profile.rejected == 4
        gold = add_reference(a, b)
        for handle in kept:
            assert np.array_equal(handle.result, gold)
        for handle in shed:
            _assert_zero_device_time(handle)
            assert isinstance(handle.error, PimOverloadError)
            assert handle.error.lane == 0

    def test_under_capacity_load_sheds_nothing(self):
        system = PimSystem(PLAIN)
        with PimServer(
            system, lanes=1, queue_depth=8, admission="shed"
        ) as server:
            a, b = rand(128, 0), rand(128, 1)
            handles = [
                server.submit("add", a=a, b=b, arrival_ns=i * 50_000.0)
                for i in range(6)
            ]
            profile = server.run()
        _assert_conserved(handles, profile)
        assert profile.rejected == 0
        assert all(h.outcome is RequestOutcome.COMPLETED for h in handles)


class TestAdmissionDegrade:
    def test_excess_arrivals_complete_bit_exactly_on_host(self):
        system = PimSystem(PLAIN)
        with PimServer(
            system, lanes=1, max_batch=4, queue_depth=1, admission="degrade"
        ) as server:
            w = rand((48, 80), 2)
            xs = [rand(80, 10 + i) for i in range(4)]
            handles = [
                server.submit("gemv", weights=w, a=x, arrival_ns=0.0)
                for x in xs
            ]
            profile = server.run()
        _assert_conserved(handles, profile)
        degraded = [
            h for h in handles if h.outcome is RequestOutcome.DEGRADED_HOST
        ]
        assert len(degraded) == 3 and profile.degraded == 3
        # Degraded results are indistinguishable from device results.
        for handle, x in zip(handles, xs):
            gold = gemv_reference(w, x, system.num_pchs)
            assert np.array_equal(handle.result, gold)
        # Degrading bypasses the queue: the host starts at arrival time.
        for handle in degraded:
            assert handle.start_ns == handle.arrival_ns
            assert handle.service_ns > 0.0


class TestDeadlines:
    def test_dead_on_arrival_expires_at_admission(self):
        system = PimSystem(PLAIN)
        with PimServer(system, lanes=1) as server:
            a, b = rand(128, 0), rand(128, 1)
            late = server.submit(
                "add", a=a, b=b, arrival_ns=5_000.0, deadline_ns=1_000.0
            )
            ok = server.submit("add", a=a, b=b, arrival_ns=0.0)
            profile = server.run()
        assert late.outcome is RequestOutcome.EXPIRED
        _assert_zero_device_time(late)
        assert ok.outcome is RequestOutcome.COMPLETED
        assert profile.expired == 1

    def test_deadline_passing_in_queue_expires_before_dispatch(self):
        system = PimSystem(PLAIN)
        with PimServer(system, lanes=1, max_batch=1) as server:
            w = rand((48, 80), 2)
            first = server.submit("gemv", weights=w, a=rand(80, 3))
            # Same lane (lanes=1), different signature: must wait for the
            # GEMV, but its deadline passes long before that finishes.
            doomed = server.submit(
                "add", a=rand(128, 4), b=rand(128, 5), deadline_ns=1.0
            )
            profile = server.run()
        assert first.outcome is RequestOutcome.COMPLETED
        assert first.service_ns > 1.0  # the GEMV outlived the deadline
        assert doomed.outcome is RequestOutcome.EXPIRED
        _assert_zero_device_time(doomed)
        # The drop is stamped at the deadline, not at the dispatch point.
        assert doomed.finish_ns == 1.0
        assert profile.expired == 1

    def test_met_deadline_completes(self):
        system = PimSystem(PLAIN)
        with PimServer(system, lanes=1) as server:
            a, b = rand(128, 0), rand(128, 1)
            handle = server.submit("add", a=a, b=b, deadline_ns=1e9)
            server.run()
        assert handle.outcome is RequestOutcome.COMPLETED
        assert np.array_equal(handle.result, add_reference(a, b))


class TestPriorities:
    def _two_class_workload(self, server, highs=4):
        """One low-priority add at t=0 plus ``highs`` high-priority muls."""
        low = server.submit(
            "add", a=rand(128, 0), b=rand(128, 1), arrival_ns=0.0, priority=0
        )
        high = [
            server.submit(
                "mul",
                a=rand(128, 10 + i),
                b=rand(128, 20 + i),
                arrival_ns=0.0,
                priority=10,
            )
            for i in range(highs)
        ]
        return low, high

    def test_higher_priority_dispatches_first(self):
        system = PimSystem(PLAIN)
        with PimServer(system, lanes=1, max_batch=1, aging_ns=0.0) as server:
            low, high = self._two_class_workload(server)
            server.run()
        # With aging disabled, strict priority: every high-priority
        # request starts before the low-priority one.
        assert all(h.start_ns < low.start_ns for h in high)
        assert low.outcome is RequestOutcome.COMPLETED

    def test_aging_prevents_starvation(self):
        """An old low-priority request out-ranks a fresh high-priority one.

        Aging credits *waiting time*, so it only helps a request that
        arrived earlier than its competitors: one priority-0 add lands at
        t=50ns into a continuous priority-3 stream arriving every 100ns.
        With a 10ns aging quantum its 50ns+ head start is worth more than
        the 3-level priority gap, so it dispatches second instead of
        dead last (the ``aging_ns=0`` control).
        """

        def serve(aging_ns):
            system = PimSystem(PLAIN)
            with PimServer(
                system, lanes=1, max_batch=1, aging_ns=aging_ns
            ) as server:
                low = server.submit(
                    "add",
                    a=rand(128, 0),
                    b=rand(128, 1),
                    arrival_ns=50.0,
                    priority=0,
                )
                high = [
                    server.submit(
                        "mul",
                        a=rand(128, 10 + i),
                        b=rand(128, 20 + i),
                        arrival_ns=i * 100.0,
                        priority=3,
                    )
                    for i in range(10)
                ]
                server.run()
            return low, high

        low, high = serve(aging_ns=10.0)
        assert low.outcome is RequestOutcome.COMPLETED
        # Priority still wins before the low request has aged: the
        # already-running high batch is never preempted...
        assert high[0].start_ns < low.start_ns
        # ...but the aged request then jumps the rest of the stream.
        assert all(h.start_ns > low.start_ns for h in high[1:])
        # Control: with aging off, the continuous stream starves it.
        starved, high = serve(aging_ns=0.0)
        assert all(h.start_ns < starved.start_ns for h in high)
        assert starved.start_ns > low.start_ns

    def test_equal_priorities_reduce_to_fifo(self):
        """Order (and results) match the historical FIFO server exactly."""
        def serve(**knobs):
            system = PimSystem(PLAIN)
            with PimServer(system, lanes=2, max_batch=4, **knobs) as server:
                w = rand((48, 80), 2)
                handles = [
                    server.submit(
                        "gemv",
                        weights=w,
                        a=rand(80, 30 + i),
                        arrival_ns=i * 700.0,
                    )
                    for i in range(8)
                ]
                server.run()
            return [(h.start_ns, h.finish_ns, h.batch_size) for h in handles]

        assert serve() == serve(aging_ns=123.0) == serve(aging_ns=0.0)


class TestRetryBudget:
    def test_exhausted_budget_falls_back_instead_of_retrying(self):
        config = PLAIN.replace(
            ecc=True,
            faults=FaultConfig(failed_channels=(0,), seed=11),
        )
        system = PimSystem(config)
        with PimServer(
            system, lanes=2, max_batch=4, retry_budget=0.0, retry_refill=0.0
        ) as server:
            w = rand((48, 80), 2)
            handles = [
                server.submit("gemv", weights=w, a=rand(80, 40 + i))
                for i in range(4)
            ]
            profile = server.run()
        _assert_conserved(handles, profile)
        # The dead channel's first failure wanted a retry, but the bucket
        # was empty: the batch went straight to the host golden path.
        assert profile.retry_budget_exhausted >= 1
        assert profile.retries == 0
        for handle in handles:
            gold = gemv_reference(w, handle.a, system.num_pchs)
            assert np.array_equal(handle.result, gold)

    def test_backoff_is_exponential_and_seed_deterministic(self):
        def delays(seed):
            system = PimSystem(PLAIN)
            with PimServer(
                system, seed=seed, backoff_base_ns=1000.0, backoff_jitter=0.5
            ) as server:
                return [server._backoff_ns(k) for k in (1, 2, 3)]

        a, b, c = delays(7), delays(7), delays(8)
        assert a == b  # same seed replays byte-identically
        assert a != c  # jitter actually depends on the seed
        # Jitter is bounded: each delay within +-50% of the 2^k ladder.
        for k, delay in enumerate(a, start=1):
            nominal = 1000.0 * 2.0 ** (k - 1)
            assert 0.5 * nominal <= delay <= 1.5 * nominal

    def test_zero_jitter_is_a_pure_exponential_ladder(self):
        system = PimSystem(PLAIN)
        with PimServer(
            system, backoff_base_ns=500.0, backoff_jitter=0.0
        ) as server:
            assert [server._backoff_ns(k) for k in (1, 2, 3)] == [
                500.0,
                1000.0,
                2000.0,
            ]


class _FlakyDevice:
    """Patches a server's device execution to fail while ``failing``."""

    def __init__(self, server):
        self.failing = True
        self.device_calls = 0
        self._original = server._execute

    def __call__(self, lane, batch):
        self.device_calls += 1
        if self.failing:
            raise PimDataError("injected persistent device fault")
        return self._original(lane, batch)


class TestCircuitBreaker:
    def _server(self, **knobs):
        system = PimSystem(PLAIN)
        server = PimServer(
            system,
            lanes=1,
            max_batch=1,
            max_retries=0,
            breaker_threshold=2,
            breaker_cooldown_ns=1e6,
            **knobs,
        )
        flaky = _FlakyDevice(server)
        server._execute = flaky
        return server, flaky

    def _one(self, server, arrival_ns=0.0, seed=0):
        a, b = rand(128, seed), rand(128, seed + 100)
        handle = server.submit("add", a=a, b=b, arrival_ns=arrival_ns)
        profile = server.run()
        return handle, profile

    def test_opens_after_consecutive_failures(self):
        server, _ = self._server()
        with server:
            _, p1 = self._one(server, seed=0)
            assert server.lanes[0].breaker_state == "closed"
            _, p2 = self._one(server, seed=1)
            assert server.lanes[0].breaker_state == "open"
        assert p2.breaker_opens == 1
        states = [(t.previous, t.state) for t in p2.breaker_transitions]
        assert states == [("closed", "open")]

    def test_open_breaker_short_circuits_to_host(self):
        server, flaky = self._server()
        with server:
            self._one(server, seed=0)
            self._one(server, seed=1)  # breaker opens
            calls_before = flaky.device_calls
            handle, profile = self._one(server, seed=2)
        # Inside the cooldown the device is never touched.
        assert flaky.device_calls == calls_before
        assert profile.breaker_short_circuits == 1
        assert handle.outcome is RequestOutcome.DEGRADED_HOST
        a, b = rand(128, 2), rand(128, 102)
        assert np.array_equal(handle.result, add_reference(a, b))

    def test_failed_probe_reopens(self):
        server, flaky = self._server()
        with server:
            self._one(server, seed=0)
            self._one(server, seed=1)  # open
            probe_at = server.lanes[0].breaker_open_until_ns + 1.0
            _, profile = self._one(server, arrival_ns=probe_at, seed=2)
        states = [(t.previous, t.state) for t in profile.breaker_transitions]
        assert states == [("open", "half_open"), ("half_open", "open")]
        assert server.lanes[0].breaker_state == "open"

    def test_successful_probe_closes(self):
        server, flaky = self._server()
        with server:
            self._one(server, seed=0)
            self._one(server, seed=1)  # open
            flaky.failing = False  # the device recovered
            probe_at = server.lanes[0].breaker_open_until_ns + 1.0
            handle, profile = self._one(server, arrival_ns=probe_at, seed=2)
        states = [(t.previous, t.state) for t in profile.breaker_transitions]
        assert states == [("open", "half_open"), ("half_open", "closed")]
        assert server.lanes[0].breaker_state == "closed"
        assert handle.outcome is RequestOutcome.COMPLETED

    def test_threshold_zero_disables_the_breaker(self):
        system = PimSystem(PLAIN)
        server = PimServer(
            system, lanes=1, max_batch=1, max_retries=0, breaker_threshold=0
        )
        flaky = _FlakyDevice(server)
        server._execute = flaky
        with server:
            for i in range(5):
                handle, profile = self._one(server, seed=i)
                assert handle.outcome is RequestOutcome.DEGRADED_HOST
            assert server.lanes[0].breaker_state == "closed"
            assert profile.breaker_transitions == []


class TestDroppedWorkCostsNothing:
    """Satellite property: shed/expired work never touches the device."""

    @settings(max_examples=10, deadline=None)
    @given(
        count=st.integers(min_value=1, max_value=8),
        gap_ns=st.floats(min_value=0.0, max_value=5_000.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_all_expired_run_leaves_no_device_trace(self, count, gap_ns, seed):
        system = PimSystem(PLAIN)
        busy_before = [mc.busy_cycles for mc in system.controllers]
        with PimServer(system, lanes=2) as server:
            a, b = rand(128, seed), rand(128, seed + 1)
            handles = [
                server.submit(
                    "add",
                    a=a,
                    b=b,
                    arrival_ns=1_000.0 + i * gap_ns,
                    # Dead on arrival: the deadline already passed.
                    deadline_ns=500.0,
                )
                for i in range(count)
            ]
            profile = server.run()
        _assert_conserved(handles, profile)
        assert all(h.outcome is RequestOutcome.EXPIRED for h in handles)
        for handle in handles:
            _assert_zero_device_time(handle)
        # Never in the occupancy accounting...
        assert profile.channel_busy_cycles == {}
        assert profile.channel_occupancy() == {}
        # ...and the controllers' busy counters never moved.
        assert [mc.busy_cycles for mc in system.controllers] == busy_before
        assert profile.batches == 0

    @settings(max_examples=10, deadline=None)
    @given(
        extra=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_shed_requests_cost_zero_service_time(self, extra, seed):
        system = PimSystem(PLAIN)
        with PimServer(
            system, lanes=1, max_batch=2, queue_depth=2, admission="shed"
        ) as server:
            a, b = rand(128, seed), rand(128, seed + 1)
            handles = [
                server.submit("add", a=a, b=b, arrival_ns=0.0)
                for _ in range(2 + extra)
            ]
            profile = server.run()
        _assert_conserved(handles, profile)
        assert profile.rejected == extra
        gold = add_reference(a, b)
        for handle in handles:
            if handle.outcome is RequestOutcome.REJECTED:
                _assert_zero_device_time(handle)
            else:
                assert np.array_equal(handle.result, gold)
        # Only dispatched requests enter the batch-size average.
        assert profile.mean_batch_size() == pytest.approx(2.0)


class TestPresetAndContext:
    def test_overload_hardened_preset(self):
        config = SystemConfig.overload_hardened()
        assert config.queue_depth == 16
        assert config.admission == "shed"
        assert config.ecc is True
        override = SystemConfig.overload_hardened(queue_depth=4)
        assert override.queue_depth == 4

    def test_context_server_passes_overload_knobs(self):
        with PimContext(PLAIN) as ctx:
            with ctx.server(
                lanes=1, max_batch=4, queue_depth=1, admission="shed"
            ) as server:
                a, b = rand(128, 0), rand(128, 1)
                handles = [
                    server.submit("add", a=a, b=b, arrival_ns=0.0)
                    for _ in range(3)
                ]
                profile = server.run()
        _assert_conserved(handles, profile)
        assert profile.rejected == 2


class TestAcceptance:
    def test_conservation_under_combined_overload_and_faults(self):
        """The headline scenario: 2x overload + channel death + flips.

        Every request ends in exactly one terminal outcome, completed and
        degraded requests are bit-exact against the golden path, dropped
        requests cost zero device time, and goodput stays positive.
        """
        config = PLAIN.replace(
            ecc=True,
            scrub_interval=4,
            faults=FaultConfig(
                bit_flip_rate=1e-4,
                check_flip_rate=1e-4,
                failed_channels=(0,),
                seed=7,
            ),
        )
        system = PimSystem(config)
        server = PimServer(
            system,
            lanes=2,
            max_batch=4,
            queue_depth=4,
            admission="shed",
            seed=7,
        )
        rng = np.random.default_rng(9)
        w = rand((48, 80), 2)
        pairs = []
        with server:
            for i in range(40):
                arrival = i * 250.0  # ~2x the saturation rate
                deadline = arrival + 40_000.0 if i % 5 == 0 else None
                priority = int(rng.integers(0, 3))
                if i % 3 == 0:
                    x = rand(80, 100 + i)
                    handle = server.submit(
                        "gemv",
                        weights=w,
                        a=x,
                        arrival_ns=arrival,
                        priority=priority,
                        deadline_ns=deadline,
                    )
                    gold = gemv_reference(w, x, system.num_pchs)
                elif i % 3 == 1:
                    a, b = rand(192, 100 + i), rand(192, 200 + i)
                    handle = server.submit(
                        "add",
                        a=a,
                        b=b,
                        arrival_ns=arrival,
                        priority=priority,
                        deadline_ns=deadline,
                    )
                    gold = add_reference(a, b)
                else:
                    a, b = rand(192, 100 + i), rand(192, 200 + i)
                    handle = server.submit(
                        "mul",
                        a=a,
                        b=b,
                        arrival_ns=arrival,
                        priority=priority,
                        deadline_ns=deadline,
                    )
                    gold = mul_reference(a, b)
                pairs.append((handle, gold))
            profile = server.run()

        handles = [h for h, _ in pairs]
        _assert_conserved(handles, profile)
        served = 0
        for handle, gold in pairs:
            if handle.outcome in (
                RequestOutcome.COMPLETED,
                RequestOutcome.DEGRADED_HOST,
            ):
                assert np.array_equal(handle.result, gold)
                served += 1
            else:
                assert handle.outcome in (
                    RequestOutcome.REJECTED,
                    RequestOutcome.EXPIRED,
                )
                _assert_zero_device_time(handle)
        assert served > 0
        assert profile.goodput_rps() > 0.0
        assert profile.goodput_rps() <= profile.throughput_rps()
        # The outcome histogram is exactly the terminal dispositions.
        outcomes = profile.outcomes()
        assert outcomes.get("completed", 0) + outcomes.get(
            "degraded_host", 0
        ) == served
        assert outcomes.get("rejected", 0) == profile.rejected
        assert outcomes.get("expired", 0) == profile.expired
