"""Tests for the PIM runtime (executor, operator caching)."""

import numpy as np
import pytest

from repro.dram.controller import SchedulerPolicy
from repro.stack.runtime import PimSystem


def rand(shape, seed):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * 0.1).astype(np.float16)


class TestSystemAssembly:
    def test_device_is_pim(self):
        from repro.pim.device import PimPseudoChannel

        system = PimSystem(num_pchs=2, num_rows=64)
        assert isinstance(system.device.pch(0), PimPseudoChannel)

    def test_driver_attached(self):
        system = PimSystem(num_pchs=2, num_rows=64)
        assert system.driver.rows_total == 64 - 6

    def test_policy_configurable(self):
        system = PimSystem(num_pchs=1, num_rows=64, policy=SchedulerPolicy.FCFS)
        assert system.controllers[0].policy is SchedulerPolicy.FCFS


class TestOperatorCache:
    def test_gemv_operator_cached_by_weights(self):
        system = PimSystem(num_pchs=1, num_rows=128)
        w = rand((128, 64), 0)
        op1 = system.executor.gemv_operator(w)
        op1.load_weights(w)
        op2 = system.executor.gemv_operator(w)
        assert op1 is op2

    def test_different_weights_different_operators(self):
        system = PimSystem(num_pchs=1, num_rows=128)
        a, b = rand((128, 64), 1), rand((128, 64), 2)
        assert system.executor.gemv_operator(a) is not system.executor.gemv_operator(b)

    def test_cached_gemv_pins_source_array(self):
        """The cache key uses ``id(w)``, which is only sound while the
        cached kernel keeps the caller's array alive: a dropped array's
        id could be recycled by a same-shape allocation and silently hit
        the stale entry."""
        system = PimSystem(num_pchs=1, num_rows=128)
        w = rand((128, 64), 7)
        op = system.executor.gemv_operator(w)
        assert op.source_weights is w

    def test_elementwise_cached_by_op_and_length(self):
        system = PimSystem(num_pchs=1, num_rows=128)
        k1 = system.executor.elementwise_operator("add", 1000)
        k2 = system.executor.elementwise_operator("add", 1000)
        k3 = system.executor.elementwise_operator("add", 2000)
        assert k1 is k2 and k1 is not k3

    def test_launch_counter(self):
        system = PimSystem(num_pchs=1, num_rows=128)
        a, b = rand(1000, 3), rand(1000, 4)
        system.executor.elementwise("add", a, b)
        system.executor.elementwise("mul", a, b)
        assert system.executor.launch_count == 2

    def test_gemv_invocation_through_executor(self):
        system = PimSystem(num_pchs=1, num_rows=128)
        w, x = rand((128, 64), 5), rand(64, 6)
        y, report = system.executor.gemv(w, x)
        gold = w.astype(np.float32) @ x.astype(np.float32)
        assert np.abs(y - gold).max() < 1e-3
        # Second call reuses staged weights; the device state still gives
        # the same answer.
        y2, _ = system.executor.gemv(w, x)
        assert np.array_equal(y, y2)
