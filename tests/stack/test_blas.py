"""Tests for the PIM BLAS public API."""

import numpy as np
import pytest

from repro.stack.blas import (
    PimBlas,
    add_reference,
    bn_reference,
    gemv_reference,
    mul_reference,
    relu_reference,
)
from repro.stack.runtime import PimSystem


@pytest.fixture(scope="module")
def system():
    return PimSystem(num_pchs=2, num_rows=256)


@pytest.fixture(scope="module")
def blas(system):
    return PimBlas(system, simulate_pchs=1)


def rand(shape, seed, scale=0.1):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * scale).astype(np.float16)


class TestGemv:
    def test_matches_reference(self, blas, system):
        w, x = rand((192, 80), 0), rand(80, 1)
        y, report = blas.gemv(w, x)
        assert np.array_equal(y, gemv_reference(w, x, system.num_pchs))
        assert report.kernel.startswith("gemv")

    def test_fp32_accuracy(self, blas):
        w, x = rand((128, 128), 2), rand(128, 3)
        y, _ = blas.gemv(w, x)
        gold = w.astype(np.float32) @ x.astype(np.float32)
        assert np.abs(y - gold).max() < 2e-3

    def test_report_has_timing(self, blas):
        w, x = rand((128, 64), 4), rand(64, 5)
        _, report = blas.gemv(w, x)
        assert report.ns > 0
        assert report.cycles > 0
        assert report.fences > 0


class TestElementwise:
    def test_add(self, blas):
        a, b = rand(2000, 6), rand(2000, 7)
        out, _ = blas.add(a, b)
        assert np.array_equal(out, add_reference(a, b))

    def test_mul(self, blas):
        a, b = rand(2000, 8), rand(2000, 9)
        out, _ = blas.mul(a, b)
        assert np.array_equal(out, mul_reference(a, b))

    def test_relu(self, blas):
        a = rand(2000, 10, scale=2.0)
        out, _ = blas.relu(a)
        assert np.array_equal(out, relu_reference(a))
        assert (out >= 0).all()

    def test_bn(self, blas):
        a = rand(2000, 11)
        out, _ = blas.bn(a, 2.0, 0.5)
        assert np.array_equal(out, bn_reference(a, 2.0, 0.5))

    def test_shape_mismatch(self, blas):
        with pytest.raises(ValueError):
            blas.add(rand(100, 0), rand(101, 0))


class TestLstmCell:
    def test_matches_fp32_cell(self, blas):
        hidden, dim = 48, 32
        w_ih = rand((4 * hidden, dim), 12)
        w_hh = rand((4 * hidden, hidden), 13)
        bias = rand(4 * hidden, 14).astype(np.float32)
        x = rand(dim, 15)
        h = rand(hidden, 16)
        c = rand(hidden, 17)
        h2, c2, reports = blas.lstm_cell(w_ih, w_hh, bias, x, h, c)
        assert len(reports) == 2
        gates = (
            w_ih.astype(np.float32) @ x.astype(np.float32)
            + w_hh.astype(np.float32) @ h.astype(np.float32)
            + bias
        )
        i, f, g, o = np.split(gates, 4)
        sig = lambda v: 1 / (1 + np.exp(-v))
        c_ref = sig(f) * c.astype(np.float32) + sig(i) * np.tanh(g)
        h_ref = sig(o) * np.tanh(c_ref)
        assert np.abs(h2.astype(np.float32) - h_ref).max() < 5e-3
        assert np.abs(c2.astype(np.float32) - c_ref).max() < 5e-3


class TestReferences:
    def test_gemv_reference_reduces_in_8_subaccumulators(self):
        # Construct a case where FP16 sequential order matters: alternating
        # +-2048 and +1 contributions would vanish in a single-accumulator
        # FP16 sum but survive in FP32 reduction of 8 sub-accumulators.
        n = 16
        w = np.ones((1, n), dtype=np.float16)
        x = np.ones(n, dtype=np.float16)
        out = gemv_reference(w, x, num_pchs=1)
        assert out[0] == 16.0

    def test_gemv_reference_pads_ragged_dims(self):
        w = rand((5, 13), 18)
        x = rand(13, 19)
        out = gemv_reference(w, x, num_pchs=2)
        gold = w.astype(np.float32) @ x.astype(np.float32)
        assert np.abs(out - gold).max() < 1e-3
