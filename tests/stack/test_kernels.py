"""Tests for PIM kernels: layouts, command streams, bit-exact numerics."""

import numpy as np
import pytest

from repro.stack.blas import add_reference, gemv_reference
from repro.stack.kernels import ElementwiseKernel, GemvKernel
from repro.stack.runtime import PimSystem


@pytest.fixture
def system():
    return PimSystem(num_pchs=2, num_rows=128)


def rand(shape, seed, scale=0.1):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * scale).astype(np.float16)


class TestGemvPlan:
    def test_plan_geometry(self, system):
        kernel = GemvKernel(system, m=200, n=96)
        plan = kernel.plan
        assert plan.tiles == 2  # ceil(200 / 128)
        assert plan.n_slice == 48  # ceil(96/2) -> padded to 8
        assert plan.chunks == 6
        assert plan.outputs_per_tile == 128

    def test_weight_location_walks_rows(self, system):
        kernel = GemvKernel(system, m=128, n=512)  # 32 chunks per pCH slice
        plan = kernel.plan
        row0, col0 = plan.weight_location(0, 0)
        row1, col1 = plan.weight_location(0, 4)
        assert row1 == row0 + 1 and col1 == col0 == 0
        assert plan.weight_location(0, 3)[1] == 24

    def test_out_rows_follow_weights(self, system):
        kernel = GemvKernel(system, m=200, n=96)
        plan = kernel.plan
        out_row, _ = plan.out_location(0)
        assert out_row >= plan.weight_base_row + plan.tiles * plan.rows_per_tile

    def test_oversized_gemv_rejected(self, system):
        with pytest.raises(Exception):
            GemvKernel(system, m=128 * 1000, n=4096)

    def test_kernels_get_disjoint_rows(self, system):
        a = GemvKernel(system, m=128, n=64)
        b = GemvKernel(system, m=128, n=64)
        assert b.plan.weight_base_row >= a.plan.out_base_row + 1


class TestGemvExecution:
    def test_bit_exact_vs_reference(self, system):
        w = rand((200, 96), 1)
        x = rand(96, 2)
        kernel = GemvKernel(system, 200, 96)
        kernel.load_weights(w)
        y, report = kernel(x)
        assert np.array_equal(y, gemv_reference(w, x, num_pchs=2))
        assert report.cycles > 0

    def test_close_to_fp32(self, system):
        w = rand((128, 64), 3)
        x = rand(64, 4)
        kernel = GemvKernel(system, 128, 64)
        kernel.load_weights(w)
        y, _ = kernel(x)
        gold = w.astype(np.float32) @ x.astype(np.float32)
        assert np.abs(y - gold).max() < 1e-3

    def test_sampled_simulation_matches_full(self, system):
        w = rand((136, 72), 5)
        x = rand(72, 6)
        kernel = GemvKernel(system, 136, 72)
        kernel.load_weights(w)
        y_full, rep_full = kernel(x)
        y_sampled, rep_sampled = kernel(x, simulate_pchs=1)
        assert np.array_equal(y_full, y_sampled)
        assert rep_sampled.simulated_pchs == 1
        assert rep_sampled.scale_factor() == 2.0

    def test_repeated_invocations(self, system):
        w = rand((128, 64), 7)
        kernel = GemvKernel(system, 128, 64)
        kernel.load_weights(w)
        for seed in (8, 9):
            x = rand(64, seed)
            y, _ = kernel(x)
            assert np.array_equal(y, gemv_reference(w, x, num_pchs=2))

    def test_requires_loaded_weights(self, system):
        kernel = GemvKernel(system, 128, 64)
        with pytest.raises(RuntimeError):
            kernel(rand(64, 0))

    def test_shape_validation(self, system):
        kernel = GemvKernel(system, 128, 64)
        with pytest.raises(ValueError):
            kernel.load_weights(rand((64, 128), 0))
        kernel.load_weights(rand((128, 64), 0))
        with pytest.raises(ValueError):
            kernel(rand(65, 0))

    def test_identity_matrix(self, system):
        n = 128
        kernel = GemvKernel(system, n, n)
        kernel.load_weights(np.eye(n, dtype=np.float16))
        x = rand(n, 11, scale=1.0)
        y, _ = kernel(x)
        assert np.allclose(y, x.astype(np.float32), atol=1e-6)

    def test_report_command_accounting(self, system):
        kernel = GemvKernel(system, 128, 64)
        kernel.load_weights(rand((128, 64), 12))
        _, report = kernel(rand(64, 13))
        plan = kernel.plan
        expected = plan.tiles * (plan.chunks * 16 + 8) * 2  # both pCHs
        assert report.column_commands == expected
        assert report.pim_flops == 2 * 128 * plan.n_slice * 2  # padded dims


class TestElementwiseExecution:
    @pytest.mark.parametrize("length", [100, 2048, 5000])
    def test_add_exact(self, system, length):
        a = rand(length, 20, scale=2.0)
        b = rand(length, 21, scale=2.0)
        kernel = ElementwiseKernel(system, "add", length)
        out, report = kernel(a, b)
        assert np.array_equal(out, add_reference(a, b))
        assert report.fences > 0

    def test_mul_exact(self, system):
        a, b = rand(1000, 22), rand(1000, 23)
        out, _ = ElementwiseKernel(system, "mul", 1000)(a, b)
        assert np.array_equal(out, (a * b).astype(np.float16))

    def test_relu_exact(self, system):
        a = rand(1000, 24, scale=3.0)
        out, _ = ElementwiseKernel(system, "relu", 1000)(a)
        expected = np.where(a.view(np.uint16) >> 15 != 0, np.float16(0), a)
        assert np.array_equal(out, expected)

    def test_bn_exact(self, system):
        a = rand(1000, 25, scale=3.0)
        out, _ = ElementwiseKernel(system, "bn", 1000)(a, scalars=(1.5, -0.25))
        expected = ((a * np.float16(1.5)).astype(np.float16) + np.float16(-0.25)).astype(np.float16)
        assert np.array_equal(out, expected)

    def test_sampled_matches_full(self, system):
        a, b = rand(3000, 26), rand(3000, 27)
        full, _ = ElementwiseKernel(system, "add", 3000)(a, b)
        sampled, _ = ElementwiseKernel(system, "add", 3000)(a, b, simulate_pchs=1)
        assert np.array_equal(full, sampled)

    def test_missing_second_operand(self, system):
        with pytest.raises(ValueError):
            ElementwiseKernel(system, "add", 100)(rand(100, 0))

    def test_unknown_op(self, system):
        with pytest.raises(ValueError):
            ElementwiseKernel(system, "sub", 100)

    def test_add_uses_more_commands_than_bn(self, system):
        """ADD needs the FILL phase (24 vs 16 commands per group)."""
        a, b = rand(2048, 28), rand(2048, 29)
        _, add_rep = ElementwiseKernel(system, "add", 2048)(a, b)
        _, bn_rep = ElementwiseKernel(system, "bn", 2048)(a, scalars=(1.0, 0.0))
        assert add_rep.column_commands == bn_rep.column_commands * 3 // 2
