"""Tests for the PIM device driver allocator."""

import pytest

from repro.dram.bank import BankConfig
from repro.dram.device import DeviceConfig
from repro.pim.device import PimHbmDevice
from repro.stack.driver import PimAllocationError, PimDeviceDriver


@pytest.fixture
def driver():
    device = PimHbmDevice(
        DeviceConfig(num_pchs=2, bank_config=BankConfig(num_rows=64))
    )
    return PimDeviceDriver(device)


class TestReservation:
    def test_register_rows_excluded(self, driver):
        # 6 reserved rows at the top (ABMR/SBMR/CONF/CRF/GRF/SRF).
        assert driver.rows_total == 64 - 6

    def test_region_is_uncacheable(self, driver):
        assert driver.uncacheable

    def test_check_row(self, driver):
        driver.check_row(0)
        driver.check_row(57)
        with pytest.raises(PimAllocationError):
            driver.check_row(58)


class TestAllocation:
    def test_contiguous_blocks(self, driver):
        a = driver.alloc_rows(10)
        b = driver.alloc_rows(5)
        assert (a.start, a.stop) == (0, 10)
        assert (b.start, b.stop) == (10, 15)
        assert a.num_rows == 10

    def test_row_indexing(self, driver):
        block = driver.alloc_rows(4)
        assert block.row(3) == 3
        with pytest.raises(IndexError):
            block.row(4)

    def test_exhaustion(self, driver):
        driver.alloc_rows(58)
        with pytest.raises(PimAllocationError):
            driver.alloc_rows(1)

    def test_zero_alloc_rejected(self, driver):
        with pytest.raises(PimAllocationError):
            driver.alloc_rows(0)

    def test_reset_frees_everything(self, driver):
        driver.alloc_rows(50)
        driver.reset()
        assert driver.rows_free == driver.rows_total
        driver.alloc_rows(50)

    def test_alloc_bytes(self, driver):
        per_row = driver.bytes_per_row_set()
        # 1 KiB x 16 banks x 2 pCHs = 32 KiB per row set.
        assert per_row == 32 * 1024
        block = driver.alloc_bytes(per_row + 1)
        assert block.num_rows == 2

    def test_allocated_rows_tracks_live_blocks(self, driver):
        a = driver.alloc_rows(3)
        driver.alloc_rows(2)
        assert sorted(driver.allocated_rows()) == [0, 1, 2, 3, 4]
        driver.free(a)
        assert sorted(driver.allocated_rows()) == [3, 4]


class TestQuarantine:
    def test_quarantined_channel_leaves_every_pool(self, driver):
        lease = driver.alloc_channels(2)
        bad = lease.channels[0]
        driver.quarantine_channels([bad])
        assert bad not in driver.channels_free
        assert bad not in driver.channels_leased
        assert driver.channels_quarantined == (bad,)

    def test_only_leased_channels_can_be_quarantined(self, driver):
        with pytest.raises(PimAllocationError):
            driver.quarantine_channels([0])

    def test_restore_returns_channel_to_free_pool(self, driver):
        lease = driver.alloc_channels(1)
        bad = lease.channels[0]
        driver.quarantine_channels([bad])
        driver.restore_channels([bad])
        assert bad in driver.channels_free
        with pytest.raises(PimAllocationError):
            driver.restore_channels([bad])

    def test_quarantine_shrinks_the_leasable_pool(self, driver):
        lease = driver.alloc_channels(2)
        driver.quarantine_channels(list(lease.channels))
        with pytest.raises(PimAllocationError):
            driver.alloc_channels(1)

    def test_reset_clears_quarantine(self, driver):
        lease = driver.alloc_channels(1)
        driver.quarantine_channels(list(lease.channels))
        driver.reset()
        assert driver.channels_quarantined == ()
        assert len(driver.channels_free) == driver.num_channels


class TestScrub:
    def test_plain_banks_make_scrub_a_noop(self, driver):
        driver.alloc_rows(4)
        result = driver.scrub()
        assert result.words_checked == 0
        assert result.corrected == 0
        assert not result.uncorrectable

    def test_nothing_allocated_nothing_scanned(self, driver):
        result = driver.scrub()
        assert result.rows_scanned == 0
