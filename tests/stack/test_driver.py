"""Tests for the PIM device driver allocator."""

import pytest

from repro.dram.bank import BankConfig
from repro.dram.device import DeviceConfig
from repro.pim.device import PimHbmDevice
from repro.stack.driver import PimAllocationError, PimDeviceDriver


@pytest.fixture
def driver():
    device = PimHbmDevice(
        DeviceConfig(num_pchs=2, bank_config=BankConfig(num_rows=64))
    )
    return PimDeviceDriver(device)


class TestReservation:
    def test_register_rows_excluded(self, driver):
        # 6 reserved rows at the top (ABMR/SBMR/CONF/CRF/GRF/SRF).
        assert driver.rows_total == 64 - 6

    def test_region_is_uncacheable(self, driver):
        assert driver.uncacheable

    def test_check_row(self, driver):
        driver.check_row(0)
        driver.check_row(57)
        with pytest.raises(PimAllocationError):
            driver.check_row(58)


class TestAllocation:
    def test_contiguous_blocks(self, driver):
        a = driver.alloc_rows(10)
        b = driver.alloc_rows(5)
        assert (a.start, a.stop) == (0, 10)
        assert (b.start, b.stop) == (10, 15)
        assert a.num_rows == 10

    def test_row_indexing(self, driver):
        block = driver.alloc_rows(4)
        assert block.row(3) == 3
        with pytest.raises(IndexError):
            block.row(4)

    def test_exhaustion(self, driver):
        driver.alloc_rows(58)
        with pytest.raises(PimAllocationError):
            driver.alloc_rows(1)

    def test_zero_alloc_rejected(self, driver):
        with pytest.raises(PimAllocationError):
            driver.alloc_rows(0)

    def test_reset_frees_everything(self, driver):
        driver.alloc_rows(50)
        driver.reset()
        assert driver.rows_free == driver.rows_total
        driver.alloc_rows(50)

    def test_alloc_bytes(self, driver):
        per_row = driver.bytes_per_row_set()
        # 1 KiB x 16 banks x 2 pCHs = 32 KiB per row set.
        assert per_row == 32 * 1024
        block = driver.alloc_bytes(per_row + 1)
        assert block.num_rows == 2
