"""Tests for the zero-copy shared-memory fabric transport.

Three tiers: unit tests of the transport primitives (arena, segment
cache, weight store, wire codec), the :func:`as_wire_array` layout
choke point, and end-to-end fabric tests asserting the shm transport's
three contracts — bit-exactness against the pipe oracle, wire-byte
reduction from shard-resident weights, and zero leaked ``/dev/shm``
segments across every lifecycle path (clean close, SIGKILL + respawn,
drain, kill-everything, corruption quarantine).
"""

import numpy as np
import pytest

from repro.stack import (
    PimFabric,
    Request,
    ServerConfig,
    SystemConfig,
    gemv_reference,
)
from repro.stack.profiler import ServingProfile
from repro.stack.shm import (
    ArrayRef,
    SegmentCache,
    ShmArena,
    StagedWeights,
    WeightRef,
    WeightStore,
    as_wire_array,
    decode_request,
    encode_request,
    live_segments,
)

CONFIG = SystemConfig(num_pchs=2, num_rows=256, simulate_pchs=1, server_seed=7)
SHM = ServerConfig(transport="shm", hedge=False)


def rand(shape, seed, scale=0.25, dtype=np.float16):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * scale).astype(dtype)


def gemv_stream(count, distinct, seed=7, shape=(16, 8), wbase=1000):
    """``count`` gemv Requests cycling over ``distinct`` weight matrices.

    ``wbase`` seeds the weight matrices themselves — streams sharing it
    share weights (and digests); distinct bases get distinct weights.
    """
    rng = np.random.default_rng(seed)
    weights = [rand(shape, wbase + k) for k in range(distinct)]
    arrivals = np.cumsum(rng.exponential(300.0, size=count))
    return [
        Request(
            "gemv", weights=weights[i % distinct],
            a=rand(shape[1], i), arrival_ns=float(arrivals[i]),
            trace_id=f"req{i}",
        )
        for i in range(count)
    ]


def assert_bit_exact(handles):
    for handle in handles:
        golden = gemv_reference(
            handle.request.weights, handle.request.a, CONFIG.num_pchs
        )
        assert handle.result is not None
        assert np.array_equal(handle.result, golden)


def serve_waves(items, workers, server_config, waves=1):
    """Serve ``items`` in ``waves`` submit/run rounds through one fabric."""
    chunk = max(1, -(-len(items) // waves))
    with PimFabric(
        CONFIG, workers=workers, server_config=server_config
    ) as fabric:
        handles, profile = [], ServingProfile()
        for lo in range(0, len(items), chunk):
            for request in items[lo:lo + chunk]:
                handles.append(fabric.submit(request))
            profile.merge(fabric.run())
        stats = {
            "bytes_tx": fabric.bytes_tx,
            "shm_tx": fabric.shm_tx,
            "shm_rx": fabric.shm_rx,
            "weight_store": dict(fabric.weight_store_stats),
        }
    return handles, profile, stats


class TestAsWireArray:
    """Satellite: the blessed C-contiguity choke point."""

    def test_contiguous_passthrough_is_identity(self):
        array = rand((8, 4), 0)
        assert as_wire_array(array) is array

    def test_fortran_order_copied_to_c(self):
        array = np.asfortranarray(rand((8, 4), 1))
        wired = as_wire_array(array)
        assert wired.flags.c_contiguous
        assert np.array_equal(wired, array)

    def test_sliced_view_copied_to_c(self):
        array = rand((8, 8), 2)[:, ::2]
        wired = as_wire_array(array)
        assert wired.flags.c_contiguous
        assert np.array_equal(wired, array)

    def test_zero_length_array_survives(self):
        array = np.empty((0, 4), dtype=np.float16)
        wired = as_wire_array(array)
        assert wired.shape == (0, 4)
        assert wired.tobytes() == b""


class TestArenaAndSegmentCache:
    def test_write_read_round_trip(self):
        arena, cache = ShmArena(tag="t"), SegmentCache()
        try:
            array = rand((64, 96), 3)
            ref = arena.write(array)
            assert np.array_equal(cache.read(ref), array)
        finally:
            cache.close()
            arena.close()

    def test_fortran_array_round_trips_layout_exact(self):
        arena, cache = ShmArena(tag="t"), SegmentCache()
        try:
            array = np.asfortranarray(rand((16, 8), 4))
            ref = arena.write(array)
            assert np.array_equal(cache.read(ref), array)
        finally:
            cache.close()
            arena.close()

    def test_reset_rewinds_offsets(self):
        arena = ShmArena(tag="t")
        try:
            first = arena.write(rand(2048, 5, dtype=np.float32))
            arena.reset()
            second = arena.write(rand(2048, 6, dtype=np.float32))
            assert second.segment == first.segment
            assert second.offset == first.offset
        finally:
            arena.close()

    def test_oversize_array_gets_dedicated_segment(self):
        arena = ShmArena(tag="t", segment_bytes=1024)
        try:
            ref = arena.write(rand(4096, 7, dtype=np.float32))
            assert len(arena.segment_names()) == 1
            assert ref.nbytes == 4096 * 4
        finally:
            arena.close()

    def test_corrupted_frame_fails_crc(self):
        arena, cache = ShmArena(tag="t"), SegmentCache()
        try:
            ref = arena.write(rand((64, 96), 8))
            segment = cache.attach(ref.segment)
            segment.buf[ref.offset] ^= 0xFF
            with pytest.raises(ValueError, match="CRC32"):
                cache.read(ref)
        finally:
            cache.close()
            arena.close()

    def test_close_unlinks_every_segment(self):
        before = live_segments()
        arena = ShmArena(tag="t")
        arena.write(rand(2048, 9, dtype=np.float32))
        assert live_segments() != before
        arena.close()
        assert live_segments() == before
        with pytest.raises(ValueError, match="closed"):
            arena.write(rand(8, 0))


class TestWeightStore:
    def test_put_get_hit_miss_accounting(self):
        store = WeightStore(budget_mb=1)
        array = rand((16, 8), 0)
        assert store.get("d1") is None
        assert store.put("d1", array)
        assert np.array_equal(store.get("d1"), array)
        assert (store.hits, store.misses) == (1, 1)

    def test_lru_eviction_reports_victims(self):
        store = WeightStore(budget_mb=1)
        a = rand(1 << 18, 1)  # 512 KiB each: two fit, the third evicts
        b, c = rand(1 << 18, 2), rand(1 << 18, 3)
        store.put("a", a), store.put("b", b)
        store.get("a")  # freshen: b is now least recently used
        store.put("c", c)
        assert store.drain_evicted() == ["b"]
        assert store.drain_evicted() == []
        assert "a" in store and "c" in store and "b" not in store
        assert store.evictions == 1

    def test_over_budget_array_never_cached(self):
        store = WeightStore(budget_mb=0.001)
        assert not store.cacheable(1 << 20)
        assert not store.put("big", rand(1 << 19, 4))
        assert len(store) == 0

    def test_zero_budget_disables_residency(self):
        store = WeightStore(budget_mb=0)
        assert not store.cacheable(16)


class TestWireCodec:
    def setup_method(self):
        self.arena = ShmArena(tag="t")
        self.cache = SegmentCache()
        self.store = WeightStore(budget_mb=4)

    def teardown_method(self):
        self.cache.close()
        self.arena.close()

    def roundtrip(self, request, resident=None, **kwargs):
        wire = encode_request(
            request, self.arena, resident if resident is not None else set(),
            self.store.budget_bytes, **kwargs
        )
        return wire, decode_request(wire, self.cache, self.store)

    def test_small_operands_ride_inline(self):
        request = Request("gemv", weights=rand((16, 8), 0), a=rand(8, 1))
        wire, decoded = self.roundtrip(request)
        assert isinstance(wire.a, np.ndarray)  # 16 bytes: inline
        assert np.array_equal(decoded.a, request.a)
        assert np.array_equal(decoded.weights, request.weights)

    def test_large_operand_crosses_as_descriptor(self):
        request = Request("gemv", weights=rand((64, 96), 2), a=rand(96, 3))
        wire, decoded = self.roundtrip(request)
        assert isinstance(wire.weights, StagedWeights)
        assert isinstance(wire.weights.ref, ArrayRef)
        assert np.array_equal(decoded.weights, request.weights)

    def test_resident_weights_ship_as_digest(self):
        request = Request("gemv", weights=rand((64, 96), 4), a=rand(96, 5))
        wire1, decoded1 = self.roundtrip(request)
        assert isinstance(wire1.weights, StagedWeights)
        # Second crossing against a residency set naming the digest.
        wire2, decoded2 = self.roundtrip(
            request, resident={request.weight_digest}
        )
        assert isinstance(wire2.weights, WeightRef)
        assert np.array_equal(decoded2.weights, request.weights)
        assert self.store.hits == 1

    def test_small_cacheable_weights_still_staged(self):
        # Residency dedup beats inlining the moment a weight repeats, so
        # cacheable weights are staged even below the inline threshold.
        request = Request("gemv", weights=rand((16, 8), 6), a=rand(8, 7))
        wire, _ = self.roundtrip(request)
        assert isinstance(wire.weights, StagedWeights)

    def test_stale_digest_reference_raises(self):
        request = Request("gemv", weights=rand((64, 96), 8), a=rand(96, 9))
        wire = encode_request(
            request, self.arena, {request.weight_digest},
            self.store.budget_bytes,
        )
        assert isinstance(wire.weights, WeightRef)
        with pytest.raises(ValueError, match="not resident"):
            decode_request(wire, self.cache, self.store)

    def test_decoded_request_carries_digest_preseeded(self):
        request = Request("gemv", weights=rand((64, 96), 10), a=rand(96, 11))
        _, decoded = self.roundtrip(request)
        assert decoded.__dict__.get("_weight_digest") == request.weight_digest

    def test_inline_zero_forces_descriptors(self):
        request = Request("gemv", weights=rand((16, 8), 12), a=rand(8, 13))
        wire, decoded = self.roundtrip(request, inline_bytes=0)
        assert isinstance(wire.a, ArrayRef)
        assert np.array_equal(decoded.a, request.a)


class TestWeightDigest:
    """Satellite: the sha1 weight digest is computed once per Request."""

    def test_digest_cached_across_accesses(self, monkeypatch):
        import repro.stack.api as api

        calls = []
        real = api.hashlib.sha1
        monkeypatch.setattr(
            api.hashlib, "sha1",
            lambda data=b"": calls.append(1) or real(data),
        )
        request = Request("gemv", weights=rand((16, 8), 0), a=rand(8, 1))
        first = request.weight_digest
        assert request.weight_digest == first
        assert request.signature[-1] == first
        assert len(calls) == 1

    def test_digest_layout_invariant(self):
        w = rand((16, 8), 2)
        c = Request("gemv", weights=w, a=rand(8, 3))
        f = Request("gemv", weights=np.asfortranarray(w), a=rand(8, 3))
        assert c.weight_digest == f.weight_digest

    def test_no_weights_no_digest(self):
        request = Request("add", a=rand(8, 4), b=rand(8, 5))
        assert request.weight_digest is None


class TestShmFabric:
    """End-to-end: bit-exactness, wire reduction, residency, leaks."""

    def test_bit_exact_vs_pipe_oracle(self):
        items = gemv_stream(24, 4)
        pipe = ServerConfig(transport="pipe", hedge=False)
        p_handles, p_profile, _ = serve_waves(items, 2, pipe, waves=3)
        s_handles, s_profile, _ = serve_waves(items, 2, SHM, waves=3)
        assert_bit_exact(s_handles)
        assert [h.outcome for h in p_handles] == [h.outcome for h in s_handles]
        assert all(
            np.array_equal(a.result, b.result)
            for a, b in zip(p_handles, s_handles)
        )
        assert p_profile.render() == s_profile.render()

    def test_repeated_weights_cut_wire_bytes(self):
        items = gemv_stream(24, 4, shape=(32, 24))  # 1.5 KiB weights
        pipe = ServerConfig(transport="pipe", hedge=False)
        _, _, p_stats = serve_waves(items, 2, pipe, waves=4)
        handles, _, s_stats = serve_waves(items, 2, SHM, waves=4)
        assert_bit_exact(handles)
        assert s_stats["bytes_tx"] * 2 < p_stats["bytes_tx"]
        assert s_stats["shm_tx"] > 0
        assert s_stats["weight_store"]["hits"] > 0

    def test_no_segments_leaked_after_clean_close(self):
        before = live_segments()
        handles, _, _ = serve_waves(gemv_stream(8, 2), 2, SHM)
        assert_bit_exact(handles)
        assert live_segments() == before

    def test_no_segments_leaked_after_sigkill_and_respawn(self):
        before = live_segments()
        config = SHM.replace(max_respawns=1, heartbeat_timeout_s=2.0)
        with PimFabric(CONFIG, workers=2, server_config=config) as fabric:
            first = [fabric.submit(r) for r in gemv_stream(8, 2)]
            fabric.run()
            fabric.kill_worker(0)
            second = [fabric.submit(r) for r in gemv_stream(8, 2, seed=11)]
            fabric.run()
            assert fabric.alive_shards() == [0, 1]
        assert_bit_exact(first + second)
        assert live_segments() == before

    def test_no_segments_leaked_after_drain(self):
        before = live_segments()
        with PimFabric(CONFIG, workers=2, server_config=SHM) as fabric:
            handles = [fabric.submit(r) for r in gemv_stream(8, 2)]
            fabric.run()
            fabric.drain(0)
            more = [fabric.submit(r) for r in gemv_stream(8, 2, seed=11)]
            fabric.run()
        assert_bit_exact(handles + more)
        assert live_segments() == before

    def test_no_segments_leaked_after_killing_every_worker(self):
        before = live_segments()
        config = SHM.replace(max_respawns=0)
        with PimFabric(CONFIG, workers=2, server_config=config) as fabric:
            handles = [fabric.submit(r) for r in gemv_stream(8, 2)]

            def kill_everything(fab):
                for shard in list(fab.alive_shards()):
                    fab.kill_worker(shard)
                fab._post_dispatch_hook = None

            fabric._post_dispatch_hook = kill_everything
            fabric.run()
        assert_bit_exact(handles)  # host path completes the round
        assert live_segments() == before

    def test_respawn_invalidates_residency(self):
        config = SHM.replace(max_respawns=1, heartbeat_timeout_s=2.0)
        with PimFabric(CONFIG, workers=2, server_config=config) as fabric:
            first = [fabric.submit(r) for r in gemv_stream(8, 2)]
            fabric.run()
            old = {s: set(d) for s, d in fabric._resident.items() if d}
            assert old  # round 1 staged weights somewhere
            victim = next(iter(old))
            fabric.kill_worker(victim)
            # Round 2 uses *different* weights (wbase), so any digest
            # still marked resident on the respawned shard would be a
            # stale round-1 entry — there must be none.
            second = [fabric.submit(r) for r in gemv_stream(8, 2, wbase=2000)]
            fabric.run()
            assert not (fabric._resident.get(victim, set()) & old[victim])
            assert fabric.respawns == {victim: 1}
        assert_bit_exact(first + second)

    def test_stale_residency_self_heals_not_stale_weights(self):
        """Negative test: a poisoned residency map (digest never staged)
        must fail the round and heal by re-staging — never serve stale
        or missing weights silently."""
        items = gemv_stream(8, 1, seed=23)
        digest = items[0].weight_digest
        config = SHM.replace(max_respawns=2)
        with PimFabric(CONFIG, workers=2, server_config=config) as fabric:
            # Lie to the router: claim every shard already staged it.
            for shard in fabric.alive_shards():
                fabric._resident.setdefault(shard, set()).add(digest)
            handles = [fabric.submit(r) for r in items]
            profile = fabric.run()
        assert_bit_exact(handles)
        assert sum(profile.outcomes().values()) == len(handles)
        assert profile.replays > 0 or profile.quarantined_shards
        assert any("not resident" in str(e) for e in fabric.worker_errors)

    def test_corrupt_shm_frame_quarantines_and_replays(self):
        """The corrupt_shm chaos kind: a result frame corrupted after the
        control blob was checksummed is caught by the descriptor CRC."""
        before = live_segments()
        items = gemv_stream(12, 4)
        config = SHM.replace(max_respawns=1, shm_inline_bytes=0)
        with PimFabric(CONFIG, workers=2, server_config=config) as fabric:
            handles = [fabric.submit(r) for r in items]
            fabric.inject_worker_fault(0, {"corrupt_shm": True, "seed": 3})
            profile = fabric.run()
            assert fabric.alive_shards() == [0, 1]
        assert_bit_exact(handles)
        assert sum(profile.outcomes().values()) == len(handles)
        assert 0 in profile.quarantined_shards
        assert profile.replays > 0
        assert any("CRC32" in str(e) for e in fabric.worker_errors)
        assert live_segments() == before

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            PimFabric(
                CONFIG, workers=1,
                server_config=ServerConfig(transport="carrier-pigeon"),
            )
