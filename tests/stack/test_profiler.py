"""Tests for the session profiler."""

import numpy as np
import pytest

from repro.stack.blas import PimBlas
from repro.stack.profiler import KernelProfile, Profiler, SessionProfile
from repro.stack.runtime import PimSystem


def rand(shape, seed, scale=0.1):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * scale).astype(np.float16)


@pytest.fixture()
def profiled():
    system = PimSystem(num_pchs=1, num_rows=256)
    return Profiler(PimBlas(system))


class TestProfiler:
    def test_records_gemv_calls(self, profiled):
        w = rand((128, 64), 0)
        profiled.gemv(w, rand(64, 1))
        profiled.gemv(w, rand(64, 2))
        profile = profiled.profile.kernels["gemv[128x64]"]
        assert profile.invocations == 2
        assert profile.cycles > 0
        assert profile.pim_flops > 0

    def test_results_pass_through_unchanged(self, profiled):
        w, x = rand((128, 64), 3), rand(64, 4)
        y, report = profiled.gemv(w, x)
        gold = w.astype(np.float32) @ x.astype(np.float32)
        assert np.abs(y - gold).max() < 1e-3
        assert report.cycles > 0

    def test_mixed_kernels_profiled_separately(self, profiled):
        profiled.gemv(rand((128, 64), 5), rand(64, 6))
        profiled.add(rand(2000, 7), rand(2000, 8))
        names = set(profiled.profile.kernels)
        assert any(n.startswith("gemv") for n in names)
        assert any(n.startswith("add") for n in names)

    def test_time_share_sums_to_one(self, profiled):
        profiled.gemv(rand((128, 64), 9), rand(64, 10))
        profiled.add(rand(2000, 11), rand(2000, 12))
        shares = profiled.profile.time_share()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_lstm_cell_reports_collected(self, profiled):
        h, d = 48, 32
        profiled.lstm_cell(
            rand((4 * h, d), 13), rand((4 * h, h), 14),
            rand(4 * h, 15).astype(np.float32),
            rand(d, 16), rand(h, 17), rand(h, 18),
        )
        total = sum(k.invocations for k in profiled.profile.kernels.values())
        assert total == 2  # two GEMVs inside the cell

    def test_render_table(self, profiled):
        profiled.gemv(rand((128, 64), 19), rand(64, 20))
        lines = profiled.profile.render()
        assert len(lines) >= 2
        assert "GFLOP/s" in lines[0]

    def test_command_utilisation_bounded(self, profiled):
        profiled.add(rand(4000, 21), rand(4000, 22))
        for profile in profiled.profile.kernels.values():
            assert 0.0 < profile.command_utilisation() <= 1.0


class TestProfileDataStructures:
    def test_empty_session(self):
        session = SessionProfile()
        assert session.time_share() == {}
        assert session.total_ns == 0

    def test_empty_kernel_profile(self):
        profile = KernelProfile("x")
        assert profile.command_utilisation() == 0.0
        assert profile.gflops() == 0.0
