"""Tests for the session profiler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stack.blas import PimBlas
from repro.stack.profiler import (
    KernelProfile,
    Profiler,
    RequestStats,
    ServingProfile,
    SessionProfile,
    _percentile,
)
from repro.stack.runtime import PimSystem


def rand(shape, seed, scale=0.1):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * scale).astype(np.float16)


@pytest.fixture()
def profiled():
    system = PimSystem(num_pchs=1, num_rows=256)
    return Profiler(PimBlas(system))


class TestProfiler:
    def test_records_gemv_calls(self, profiled):
        w = rand((128, 64), 0)
        profiled.gemv(w, rand(64, 1))
        profiled.gemv(w, rand(64, 2))
        profile = profiled.profile.kernels["gemv[128x64]"]
        assert profile.invocations == 2
        assert profile.cycles > 0
        assert profile.pim_flops > 0

    def test_results_pass_through_unchanged(self, profiled):
        w, x = rand((128, 64), 3), rand(64, 4)
        y, report = profiled.gemv(w, x)
        gold = w.astype(np.float32) @ x.astype(np.float32)
        assert np.abs(y - gold).max() < 1e-3
        assert report.cycles > 0

    def test_mixed_kernels_profiled_separately(self, profiled):
        profiled.gemv(rand((128, 64), 5), rand(64, 6))
        profiled.add(rand(2000, 7), rand(2000, 8))
        names = set(profiled.profile.kernels)
        assert any(n.startswith("gemv") for n in names)
        assert any(n.startswith("add") for n in names)

    def test_time_share_sums_to_one(self, profiled):
        profiled.gemv(rand((128, 64), 9), rand(64, 10))
        profiled.add(rand(2000, 11), rand(2000, 12))
        shares = profiled.profile.time_share()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_lstm_cell_reports_collected(self, profiled):
        h, d = 48, 32
        profiled.lstm_cell(
            rand((4 * h, d), 13), rand((4 * h, h), 14),
            rand(4 * h, 15).astype(np.float32),
            rand(d, 16), rand(h, 17), rand(h, 18),
        )
        total = sum(k.invocations for k in profiled.profile.kernels.values())
        assert total == 2  # two GEMVs inside the cell

    def test_render_table(self, profiled):
        profiled.gemv(rand((128, 64), 19), rand(64, 20))
        lines = profiled.profile.render()
        assert len(lines) >= 2
        assert "GFLOP/s" in lines[0]

    def test_command_utilisation_bounded(self, profiled):
        profiled.add(rand(4000, 21), rand(4000, 22))
        for profile in profiled.profile.kernels.values():
            assert 0.0 < profile.command_utilisation() <= 1.0


class TestProfileDataStructures:
    def test_empty_session(self):
        session = SessionProfile()
        assert session.time_share() == {}
        assert session.total_ns == 0

    def test_empty_kernel_profile(self):
        profile = KernelProfile("x")
        assert profile.command_utilisation() == 0.0
        assert profile.gflops() == 0.0


class TestPercentileEdgeCases:
    def test_empty_list_is_zero_for_any_quantile(self):
        for q in (0.0, 0.5, 0.95, 1.0):
            assert _percentile([], q) == 0.0

    def test_single_element_is_returned_for_any_quantile(self):
        for q in (0.0, 0.5, 1.0):
            assert _percentile([42.0], q) == 42.0

    def test_extreme_quantiles_hit_min_and_max(self):
        values = [30.0, 10.0, 20.0, 40.0]
        assert _percentile(values, 0.0) == 10.0
        assert _percentile(values, 1.0) == 40.0

    def test_out_of_range_quantiles_clamp_to_extremes(self):
        values = [3.0, 1.0, 2.0]
        # Percent-style misuse (95 instead of 0.95) degrades to the max
        # instead of indexing out of bounds.
        assert _percentile(values, 95.0) == 3.0
        assert _percentile(values, -0.5) == 1.0

    def test_unsorted_input_is_ranked_not_indexed(self):
        assert _percentile([9.0, 1.0, 5.0], 0.5) == 5.0


class TestServingProfileEdgeCases:
    def test_empty_profile_reports_zero_not_nan(self):
        profile = ServingProfile()
        assert profile.throughput_rps() == 0.0
        assert profile.goodput_rps() == 0.0
        assert profile.mean_wait_ns() == 0.0
        assert profile.mean_service_ns() == 0.0
        assert profile.mean_turnaround_ns() == 0.0
        assert profile.p95_turnaround_ns() == 0.0
        assert profile.mean_batch_size() == 0.0
        assert profile.outcomes() == {}
        assert profile.channel_occupancy() == {}
        assert profile.turnaround_percentiles_by_priority() == {}
        assert isinstance(profile.render(), list)

    def test_zero_makespan_profile_reports_zero_rates(self):
        # Every request shed at t=0: terminal requests exist but the
        # session never advanced the clock — rates are 0.0, not a
        # ZeroDivisionError.
        profile = ServingProfile()
        profile.record(
            RequestStats(
                request_id=0, op="add", arrival_ns=0.0, start_ns=0.0,
                finish_ns=0.0, batch_size=0, outcome="rejected",
            )
        )
        assert profile.makespan_ns == 0.0
        assert profile.throughput_rps() == 0.0
        assert profile.goodput_rps() == 0.0

    def test_never_served_request_stats(self):
        # Shed after queueing for 4ns: wait is defined, service is zero.
        stats = RequestStats(
            request_id=1, op="gemv", arrival_ns=5.0, start_ns=9.0,
            finish_ns=9.0, batch_size=0, outcome="expired",
        )
        assert stats.wait_ns == 4.0
        assert stats.service_ns == 0.0
        assert stats.turnaround_ns == 4.0

    def test_goodput_counts_only_useful_outcomes(self):
        profile = ServingProfile()
        for i, outcome in enumerate(
            ["completed", "degraded_host", "rejected", "expired", "failed"]
        ):
            profile.record(
                RequestStats(
                    request_id=i, op="add", arrival_ns=0.0, start_ns=0.0,
                    finish_ns=1000.0 if outcome in ("completed", "degraded_host")
                    else 0.0,
                    batch_size=1 if outcome in ("completed", "degraded_host")
                    else 0,
                    outcome=outcome,
                )
            )
        assert profile.num_requests == 5
        assert profile.rejected == 1
        assert profile.expired == 1
        assert profile.degraded == 1
        # 5 terminal requests over 1us, but only 2 produced results.
        assert profile.throughput_rps() == pytest.approx(5e6)
        assert profile.goodput_rps() == pytest.approx(2e6)

    def test_priority_percentiles_exclude_dropped_requests(self):
        profile = ServingProfile()
        profile.record(
            RequestStats(
                request_id=0, op="add", arrival_ns=0.0, start_ns=100.0,
                finish_ns=200.0, priority=1, outcome="completed",
            )
        )
        # A shed request of the same class: zero-length turnaround must
        # not flatter the class's latency distribution.
        profile.record(
            RequestStats(
                request_id=1, op="add", arrival_ns=0.0, start_ns=0.0,
                finish_ns=0.0, batch_size=0, priority=1, outcome="rejected",
            )
        )
        by_priority = profile.turnaround_percentiles_by_priority((0.5,))
        assert by_priority == {1: {0.5: 200.0}}


def _session(
    request_specs, breakers=(), makespan_cycles=0, busy=(), **counters
):
    """Build one ServingProfile from compact specs.

    ``request_specs`` is a list of ``(priority, outcome, arrival, start,
    finish)``; ``breakers`` a list of ``(lane, previous, state, at_ns)``.
    """
    profile = ServingProfile(makespan_cycles=makespan_cycles)
    for i, (priority, outcome, arrival, start, finish) in enumerate(
        request_specs
    ):
        profile.record(
            RequestStats(
                request_id=i, op="add", arrival_ns=arrival, start_ns=start,
                finish_ns=finish, priority=priority, outcome=outcome,
            )
        )
    for lane, previous, state, at_ns in breakers:
        profile.record_breaker(lane, previous, state, at_ns)
    for channel, cycles in busy:
        profile.channel_busy_cycles[channel] = cycles
    for name, value in counters.items():
        setattr(profile, name, value)
    return profile


class TestServingProfileMerge:
    """merge(a, b) must equal the profile one combined session records."""

    A_REQUESTS = [
        (0, "completed", 0.0, 50.0, 150.0),
        (1, "completed", 10.0, 60.0, 400.0),
        (0, "rejected", 20.0, 20.0, 20.0),
    ]
    B_REQUESTS = [
        (1, "completed", 500.0, 550.0, 900.0),
        (0, "degraded_host", 510.0, 510.0, 800.0),
        (1, "expired", 520.0, 520.0, 520.0),
    ]
    A_BREAKERS = [(0, "closed", "open", 120.0)]
    B_BREAKERS = [(0, "open", "half_open", 600.0), (0, "half_open", "closed", 700.0)]

    def make_pair(self):
        a = _session(
            self.A_REQUESTS, breakers=self.A_BREAKERS, makespan_cycles=1000,
            busy=[(0, 600), (1, 200)], batches=2, launches=3, retries=1,
            scrubs=1, scrub_corrected=2, ecc_corrected=4, faults_injected=5,
            retry_budget_exhausted=1, breaker_short_circuits=1,
        )
        b = _session(
            self.B_REQUESTS, breakers=self.B_BREAKERS, makespan_cycles=400,
            busy=[(1, 100), (2, 300)], batches=1, launches=1, fallbacks=2,
            scrubs=1, scrub_uncorrectable=1,
        )
        combined = _session(
            self.A_REQUESTS + self.B_REQUESTS,
            breakers=self.A_BREAKERS + self.B_BREAKERS,
            makespan_cycles=1400,
            busy=[(0, 600), (1, 300), (2, 300)],
            batches=3, launches=4, retries=1, fallbacks=2, scrubs=2,
            scrub_corrected=2, scrub_uncorrectable=1, ecc_corrected=4,
            faults_injected=5, retry_budget_exhausted=1,
            breaker_short_circuits=1,
        )
        return a, b, combined

    def test_merge_equals_combined_session(self):
        a, b, combined = self.make_pair()
        merged = a.merge(b)
        assert merged is a
        assert merged.num_requests == combined.num_requests
        assert merged.outcomes() == combined.outcomes()
        assert merged.makespan_ns == combined.makespan_ns
        assert merged.makespan_cycles == combined.makespan_cycles
        assert merged.channel_busy_cycles == combined.channel_busy_cycles
        assert merged.channel_occupancy() == combined.channel_occupancy()
        for name in (
            "batches", "launches", "retries", "fallbacks", "scrubs",
            "scrub_corrected", "scrub_uncorrectable", "ecc_corrected",
            "faults_injected", "rejected", "expired", "degraded",
            "retry_budget_exhausted", "breaker_opens",
            "breaker_short_circuits",
        ):
            assert getattr(merged, name) == getattr(combined, name), name

    def test_merge_carries_breaker_transitions(self):
        """The regression: ad-hoc merging historically dropped the
        transition log, leaving only the scalar open counter."""
        a, b, combined = self.make_pair()
        merged = a.merge(b)
        assert merged.breaker_transitions == combined.breaker_transitions
        assert merged.breaker_opens == combined.breaker_opens == 1

    def test_merge_carries_percentile_inputs(self):
        """Per-priority percentiles need the raw per-request stats, not
        just aggregates — merge must carry every RequestStats across."""
        a, b, combined = self.make_pair()
        merged = a.merge(b)
        assert (
            merged.turnaround_percentiles_by_priority()
            == combined.turnaround_percentiles_by_priority()
        )
        assert merged.p95_turnaround_ns() == combined.p95_turnaround_ns()
        assert merged.render() == combined.render()

    def test_profiler_record_serving_merges_sessions(self):
        a, b, combined = self.make_pair()
        profiler = Profiler()
        profiler.record_serving(a)
        profiler.record_serving(b)
        assert profiler.serving.num_requests == combined.num_requests
        assert profiler.serving.render() == combined.render()


def _random_profile(draw_seed: int, shard: int) -> ServingProfile:
    """One shard-flavoured ServingProfile from a deterministic seed."""
    rng = np.random.default_rng(draw_seed)
    profile = ServingProfile(makespan_cycles=int(rng.integers(0, 500)))
    outcomes = ["completed", "rejected", "expired", "degraded_host"]
    for i in range(int(rng.integers(1, 6))):
        arrival = float(rng.integers(0, 1000))
        start = arrival + float(rng.integers(0, 100))
        profile.record(
            RequestStats(
                request_id=int(rng.integers(0, 1000)),
                op="gemv",
                arrival_ns=arrival,
                start_ns=start,
                finish_ns=start + float(rng.integers(0, 400)),
                lane=int(rng.integers(0, 3)),
                shard=shard,
                priority=int(rng.integers(0, 3)),
                outcome=outcomes[int(rng.integers(0, len(outcomes)))],
            )
        )
    for _ in range(int(rng.integers(0, 3))):
        profile.record_breaker(
            int(rng.integers(0, 3)), "closed", "open",
            float(rng.integers(0, 1000)), shard=shard,
        )
    profile.channel_busy_cycles[int(rng.integers(0, 8))] = int(
        rng.integers(1, 400)
    )
    profile.retries = int(rng.integers(0, 4))
    profile.fallbacks = int(rng.integers(0, 4))
    profile.replays = int(rng.integers(0, 4))
    if rng.integers(0, 2):
        profile.quarantined_shards.append(shard)
        profile.quarantined_channels.append(int(rng.integers(0, 8)))
    return profile


def _merge_fold(profiles):
    """Left-fold merge into a fresh profile (merge mutates its target)."""
    import copy

    acc = ServingProfile()
    for profile in profiles:
        acc.merge(copy.deepcopy(profile))
    return acc


class TestMergeAlgebra:
    """``merge()`` must be associative and commutative: the fabric folds
    shard profiles in whatever order replies arrive (and re-folds after
    replays), and the merged session must not depend on that order."""

    @given(
        seeds=st.lists(st.integers(0, 2**16), min_size=3, max_size=5),
        order=st.permutations(list(range(3))),
    )
    @settings(max_examples=25, deadline=None)
    def test_merge_order_free(self, seeds, order):
        profiles = [
            _random_profile(seed, shard) for shard, seed in enumerate(seeds)
        ]
        forward = _merge_fold(profiles)
        shuffled = list(profiles)
        base = [shuffled[i] for i in order] + shuffled[3:]
        permuted = _merge_fold(base)
        assert forward.render() == permuted.render()
        assert forward.outcomes() == permuted.outcomes()
        assert forward.requests == permuted.requests
        assert forward.breaker_transitions == permuted.breaker_transitions
        assert forward.quarantined_shards == permuted.quarantined_shards
        assert forward.quarantined_channels == permuted.quarantined_channels
        assert forward.channel_busy_cycles == permuted.channel_busy_cycles
        assert forward.replays == permuted.replays

    @given(seeds=st.lists(st.integers(0, 2**16), min_size=3, max_size=4))
    @settings(max_examples=15, deadline=None)
    def test_merge_associative_grouping(self, seeds):
        """(a ∪ b) ∪ c == a ∪ (b ∪ c) for every counter and log."""
        import copy

        profiles = [
            _random_profile(seed, shard) for shard, seed in enumerate(seeds)
        ]
        a, b, c = (copy.deepcopy(p) for p in profiles[:3])
        left = a.merge(b).merge(c)
        a2, b2, c2 = (copy.deepcopy(p) for p in profiles[:3])
        right = a2.merge(b2.merge(c2))
        assert left.render() == right.render()
        assert left.requests == right.requests
        assert left.breaker_transitions == right.breaker_transitions
        assert (
            left.turnaround_percentiles_by_priority()
            == right.turnaround_percentiles_by_priority()
        )
