"""The serving engine: batching, lane pipelining, per-channel-set fences.

The tentpole invariant is *bit-exactness*: a request served through the
batched/pipelined path must produce exactly the bytes the sequential
``PimBlas`` path produces on an identical platform — under refresh, under
ECC, and under an adversarial in-window scheduler.  The second invariant
is *isolation*: a lane's fences and drains never move another lane's
clocks.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.controller import SchedulerPolicy
from repro.stack.blas import PimBlas
from repro.stack.kernels import ElementwiseKernel, GemvKernel
from repro.stack.runtime import PimSystem, SystemConfig
from repro.stack.server import PimRequest, PimServer

PLAIN = SystemConfig(num_pchs=4, num_rows=256, simulate_pchs=1)
HARDENED = PLAIN.replace(refresh=True, ecc=True)


def rand(shape, seed, scale=0.25):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * scale).astype(np.float16)


def _mixed_workload(seed=3, count=12):
    """Interleaved gemv / add / mul requests (one shared weight matrix)."""
    w = rand((48, 80), seed)
    requests = []
    for i in range(count):
        kind = i % 3
        if kind == 0:
            requests.append(("gemv", dict(weights=w, a=rand(80, seed + 10 + i))))
        elif kind == 1:
            requests.append(
                ("add", dict(a=rand(192, seed + 10 + i), b=rand(192, seed + 40 + i)))
            )
        else:
            requests.append(
                ("mul", dict(a=rand(192, seed + 10 + i), b=rand(192, seed + 40 + i)))
            )
    return requests


def _sequential_results(config, workload):
    blas = PimBlas(PimSystem(config), simulate_pchs=config.simulate_pchs)
    results = []
    for op, kw in workload:
        if op == "gemv":
            y, _ = blas.gemv(kw["weights"], kw["a"])
        elif op == "add":
            y, _ = blas.add(kw["a"], kw["b"])
        else:
            y, _ = blas.mul(kw["a"], kw["b"])
        results.append(y)
    return results


class TestServingBitExact:
    @pytest.mark.parametrize(
        "config", [PLAIN, HARDENED], ids=["plain", "refresh+ecc"]
    )
    def test_mixed_load_matches_sequential(self, config):
        """gemv/add/mul through batched lanes == N sequential BLAS calls."""
        workload = _mixed_workload()
        expected = _sequential_results(config, workload)
        system = PimSystem(config)
        with PimServer(system, lanes=2, max_batch=4) as server:
            handles = [server.submit(op, **kw) for op, kw in workload]
            profile = server.run()
        assert profile.num_requests == len(workload)
        # Batching actually happened (all arrivals at t=0).
        assert profile.mean_batch_size() > 1
        for handle, want in zip(handles, expected):
            assert np.array_equal(handle.result, want)

    def test_fused_gemv_batch_matches_sequential_calls(self):
        """GemvKernel.batched(fused=True) == one call per input, bitwise."""
        system = PimSystem(PLAIN)
        w = rand((64, 96), 0)
        xs = np.stack([rand(96, i + 1) for i in range(5)])
        kernel = GemvKernel(system, 64, 96, max_batch=4)
        kernel.load_weights(w)
        singles = np.stack([kernel(x, simulate_pchs=1)[0] for x in xs])
        fused, report = kernel.batched(xs, simulate_pchs=1, fused=True)
        assert np.array_equal(fused, singles)
        # 5 inputs over max_batch=4 slots -> exactly two launches.
        assert report.notes["launches"] == 2

    def test_fused_elementwise_batch_matches_sequential_calls(self):
        system = PimSystem(PLAIN)
        kernel = ElementwiseKernel(system, "add", 200)
        items = [(rand(200, i), rand(200, i + 50)) for i in range(4)]
        singles = [kernel(a, b, simulate_pchs=1)[0] for a, b in items]
        fused, report = kernel.batched(items, simulate_pchs=1)
        for got, want in zip(fused, singles):
            assert np.array_equal(got, want)
        assert report.notes["launches"] == 1

    def test_lane_subset_gemv_matches_full_device(self):
        """The layout/executing-channel split keeps lane results canonical."""
        w, x = rand((72, 100), 5), rand(100, 6)
        full = GemvKernel(PimSystem(PLAIN), 72, 100)
        full.load_weights(w)
        y_full, _ = full(x, simulate_pchs=1)
        system = PimSystem(PLAIN)
        lane = GemvKernel(system, 72, 100, channels=(2, 3))
        lane.load_weights(w)
        y_lane, _ = lane(x, simulate_pchs=1)
        assert np.array_equal(y_lane, y_full)

    def test_amortisation_wins_at_batch(self):
        """Batched serving clears 1.5x sequential at mean batch >= 4."""
        workload = _mixed_workload(count=16)
        system = PimSystem(PLAIN)
        blas = PimBlas(PimSystem(PLAIN), simulate_pchs=1)
        seq_ns = 0.0
        for op, kw in workload:
            if op == "gemv":
                seq_ns += blas.gemv(kw["weights"], kw["a"])[1].ns
            elif op == "add":
                seq_ns += blas.add(kw["a"], kw["b"])[1].ns
            else:
                seq_ns += blas.mul(kw["a"], kw["b"])[1].ns
        with PimServer(system, lanes=2, max_batch=8) as server:
            for op, kw in workload:
                server.submit(op, **kw)
            profile = server.run()
        assert profile.mean_batch_size() >= 4
        assert seq_ns / profile.makespan_ns >= 1.5


class TestServerMechanics:
    def test_lanes_lease_disjoint_channel_sets(self):
        system = PimSystem(PLAIN)
        server = PimServer(system, lanes=2)
        chans = [set(lane.channels) for lane in server.lanes]
        assert chans[0].isdisjoint(chans[1])
        server.close()
        # Channels return to the driver on close.
        assert len(system.driver.channels_free) == system.num_pchs

    def test_queueing_accounting(self):
        """Waits and turnarounds follow from arrivals and lane clocks."""
        system = PimSystem(PLAIN)
        w = rand((48, 80), 0)
        with PimServer(system, lanes=1, max_batch=2) as server:
            first = server.submit("gemv", weights=w, a=rand(80, 1), arrival_ns=0.0)
            late = server.submit(
                "gemv", weights=w, a=rand(80, 2), arrival_ns=1e9
            )
            profile = server.run()
        assert first.wait_ns == 0.0
        # The late request arrives long after the first finishes: no queueing.
        assert late.start_ns == pytest.approx(1e9)
        assert late.wait_ns == 0.0
        assert profile.makespan_ns == pytest.approx(late.finish_ns)
        for stats in profile.requests:
            assert stats.turnaround_ns == pytest.approx(
                stats.wait_ns + stats.service_ns
            )

    def test_gemv_signature_keys_on_content_not_identity(self):
        """Equal bytes share a launch; an ``id()``-recycled array must not.

        The resident-kernel cache outlives run() calls, so identity keys
        would serve stale weights once a freed array's id is reused.
        """
        w = rand((16, 32), 0)
        same = PimRequest(0, "gemv", weights=w, a=rand(32, 1))
        copy = PimRequest(1, "gemv", weights=w.copy(), a=rand(32, 2))
        other = PimRequest(2, "gemv", weights=rand((16, 32), 9), a=rand(32, 3))
        assert same.signature == copy.signature
        assert same.signature != other.signature

    def test_same_shape_weights_across_runs_stay_correct(self):
        """A second run with different same-shape weights (the old array
        dropped, so its id may be recycled) must use the new weights."""
        system = PimSystem(PLAIN)
        ref = PimBlas(PimSystem(PLAIN), simulate_pchs=1)
        with PimServer(system, lanes=1, max_batch=2) as server:
            w1 = rand((48, 80), 21)
            x1 = rand(80, 22)
            first = server.submit("gemv", weights=w1, a=x1)
            server.run()
            want1 = ref.gemv(w1, x1)[0]
            del w1  # allow id reuse by the next allocation
            w2 = rand((48, 80), 23)
            x2 = rand(80, 24)
            second = server.submit("gemv", weights=w2, a=x2)
            server.run()
            assert np.array_equal(first.result, want1)
            assert np.array_equal(second.result, ref.gemv(w2, x2)[0])
            # Distinct contents got distinct resident kernels; a
            # byte-identical resubmission reuses rather than reloads.
            assert len(server.lanes[0].gemv_kernels) == 2
            third = server.submit("gemv", weights=w2.copy(), a=rand(80, 25))
            server.run()
            assert len(server.lanes[0].gemv_kernels) == 2
            assert third.result is not None

    def test_uneven_lane_split_leases_every_channel(self):
        """3 lanes on 4 channels -> 2+1+1, no channel left permanently idle."""
        system = PimSystem(PLAIN)
        server = PimServer(system, lanes=3)
        sizes = sorted(len(lane.channels) for lane in server.lanes)
        assert sizes == [1, 1, 2]
        leased = set()
        for lane in server.lanes:
            leased.update(lane.channels)
        assert leased == set(range(system.num_pchs))
        assert system.driver.channels_free == []
        server.close()
        assert len(system.driver.channels_free) == system.num_pchs

    def test_submit_validates_operands(self):
        system = PimSystem(PLAIN)
        with PimServer(system) as server:
            with pytest.raises(ValueError):
                server.submit("gemv", a=rand(8, 0))  # no weights
            with pytest.raises(ValueError):
                server.submit("add", a=rand(8, 0))  # no second operand
            with pytest.raises(ValueError):
                server.submit("transpose", a=rand(8, 0))


class TestChannelSetFences:
    """Per-channel-set fences preserve ordering without global coupling."""

    @given(seed=st.integers(0, 2**16), split=st.integers(1, 3))
    @settings(max_examples=8, deadline=None)
    def test_disjoint_lanes_stay_bit_exact_under_shuffle(self, seed, split):
        """Two lanes under an adversarial scheduler: per-set fences are
        enough to keep each lane's AAM windows ordered."""
        config = SystemConfig(
            num_pchs=4,
            num_rows=256,
            policy=SchedulerPolicy.SHUFFLE,
            scheduler_seed=seed,
        )
        system = PimSystem(config)
        lane_a = tuple(range(split))
        lane_b = tuple(range(split, 4))
        w, x = rand((48, 64), seed), rand(64, seed + 1)
        a, b = rand(160, seed + 2), rand(160, seed + 3)
        gemv = GemvKernel(system, 48, 64, channels=lane_a)
        gemv.load_weights(w)
        ew = ElementwiseKernel(system, "add", 160, channels=lane_b)
        y, _ = gemv(x)
        s, _ = ew(a, b)
        ref_sys = PimSystem(SystemConfig(num_pchs=4, num_rows=256))
        ref_gemv = GemvKernel(ref_sys, 48, 64)
        ref_gemv.load_weights(w)
        y_ref, _ = ref_gemv(x)
        assert np.array_equal(y, y_ref)
        assert np.array_equal(
            s, (a.astype(np.float16) + b.astype(np.float16)).astype(np.float16)
        )

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=8, deadline=None)
    def test_set_drain_never_moves_other_clocks(self, seed):
        """drain_set/fence_set on one set leave non-members' clocks and
        queues untouched — the isolation pipelining relies on."""
        system = PimSystem(
            SystemConfig(
                num_pchs=4,
                num_rows=128,
                policy=SchedulerPolicy.SHUFFLE,
                scheduler_seed=seed,
            )
        )
        rng = np.random.default_rng(seed)
        for mc in system.controllers:
            for _ in range(int(rng.integers(4, 20))):
                mc.read(0, 0, int(rng.integers(0, 64)), int(rng.integers(0, 16)))
        members = (0, 1)
        others = (2, 3)
        before_cycles = [system.controllers[i].current_cycle for i in others]
        before_pending = [system.controllers[i].pending for i in others]
        system.fence_set(members)
        system.drain_set(members)
        for i, cycle, pend in zip(others, before_cycles, before_pending):
            assert system.controllers[i].current_cycle == cycle
            assert system.controllers[i].pending == pend
        # Members did drain and their clocks are aligned.
        for i in members:
            assert system.controllers[i].pending == 0
        assert (
            system.controllers[0].current_cycle
            == system.controllers[1].current_cycle
        )

    def test_lane_clocks_advance_independently(self):
        """Simulated time on one lane does not inflate the other lane's
        makespan — the overlap the serving speedup comes from."""
        system = PimSystem(PLAIN)
        heavy = ElementwiseKernel(system, "add", 16384, channels=(0, 1))
        light = ElementwiseKernel(system, "add", 64, channels=(2, 3))
        heavy(rand(16384, 0), rand(16384, 1), simulate_pchs=1)
        light(rand(64, 2), rand(64, 3), simulate_pchs=1)
        heavy_front = system.now_cycles((0, 1))
        light_front = system.now_cycles((2, 3))
        assert light_front < heavy_front
