"""Tests for auto-refresh, including refresh during live PIM kernels."""

from dataclasses import replace

import numpy as np
import pytest

from repro.dram.bank import BankConfig
from repro.dram.commands import CommandType
from repro.dram.controller import MemoryController
from repro.dram.pseudochannel import PseudoChannel
from repro.dram.timing import HBM2_1GHZ

FAST_REFRESH = replace(HBM2_1GHZ, trefi=200, trfc=100)


def make_controller(**kwargs):
    channel = PseudoChannel(FAST_REFRESH, BankConfig(num_rows=64))
    return MemoryController(channel, refresh=True, **kwargs), channel


class TestControllerRefresh:
    def test_refresh_issued_periodically(self):
        mc, ch = make_controller()
        for i in range(256):
            mc.read(i % 4, 0, 0, i % 32)
        mc.drain()
        assert mc.refresh_count >= 1
        assert ch.cmd_counts[CommandType.REF] == mc.refresh_count

    def test_refresh_closes_rows(self):
        mc, ch = make_controller()
        for i in range(256):
            mc.read(0, 0, 0, i % 32)
        result = mc.drain()
        # Rows were re-opened after each refresh: more than one ACT.
        assert result.command_count[CommandType.ACT] > 1

    def test_data_survives_refresh(self):
        mc, _ = make_controller()
        data = np.arange(32, dtype=np.uint8)
        mc.write(0, 0, 5, 3, data)
        for i in range(128):
            mc.read(1, 0, 0, i % 32)
        mc.read(0, 0, 5, 3, tag="check")
        result = mc.drain()
        assert np.array_equal(result.read_data["check"], data)

    def test_refresh_costs_cycles(self):
        def run(refresh):
            channel = PseudoChannel(FAST_REFRESH, BankConfig(num_rows=64))
            mc = MemoryController(channel, refresh=refresh)
            for i in range(256):
                mc.read(i % 4, 0, 0, i % 32)
            return mc.drain().cycles

        assert run(True) > run(False)

    def test_disabled_by_default(self):
        channel = PseudoChannel(FAST_REFRESH, BankConfig(num_rows=64))
        mc = MemoryController(channel)
        for i in range(256):
            mc.read(0, 0, 0, i % 32)
        mc.drain()
        assert mc.refresh_count == 0


class TestRefreshDuringPimKernels:
    def test_gemv_bit_exact_under_refresh(self):
        """A REF lands mid-kernel: the controller precharges all banks, the
        broadcast REF hits the PIM device, rows re-open, and the microkernel
        result is unchanged — JEDEC compliance in action."""
        from repro.stack.blas import gemv_reference
        from repro.stack.kernels import GemvKernel
        from repro.stack.runtime import PimSystem

        system = PimSystem(
            num_pchs=1, num_rows=128, refresh=True,
            timing=replace(HBM2_1GHZ, trefi=400, trfc=120),
        )
        rng = np.random.default_rng(0)
        w = (rng.standard_normal((128, 128)) * 0.1).astype(np.float16)
        x = (rng.standard_normal(128) * 0.1).astype(np.float16)
        kernel = GemvKernel(system, 128, 128)
        kernel.load_weights(w)
        y, report = kernel(x)
        assert np.array_equal(y, gemv_reference(w, x, num_pchs=1))
        assert system.controllers[0].refresh_count >= 5

    def test_elementwise_bit_exact_under_refresh(self):
        from repro.stack.blas import add_reference
        from repro.stack.kernels import ElementwiseKernel
        from repro.stack.runtime import PimSystem

        system = PimSystem(
            num_pchs=1, num_rows=128, refresh=True,
            timing=replace(HBM2_1GHZ, trefi=300, trfc=100),
        )
        rng = np.random.default_rng(1)
        a = rng.standard_normal(8000).astype(np.float16)
        b = rng.standard_normal(8000).astype(np.float16)
        out, _ = ElementwiseKernel(system, "add", 8000)(a, b)
        assert np.array_equal(out, add_reference(a, b))
        assert system.controllers[0].refresh_count >= 1
