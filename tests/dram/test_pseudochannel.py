"""Tests for shared-resource timing in the pseudo-channel."""

import numpy as np
import pytest

from repro.dram.commands import Command, CommandType
from repro.dram.bank import BankConfig, TimingViolation
from repro.dram.pseudochannel import BANKS_PER_PCH, PseudoChannel
from repro.dram.timing import HBM2_1GHZ, TimingParams


@pytest.fixture
def ch():
    return PseudoChannel(HBM2_1GHZ, BankConfig(num_rows=32))


def act(bg, ba, row=0):
    return Command(CommandType.ACT, bg, ba, row=row)


def rd(bg, ba, row=0, col=0):
    return Command(CommandType.RD, bg, ba, row=row, col=col)


def wr(bg, ba, row=0, col=0):
    data = np.zeros(32, dtype=np.uint8)
    return Command(CommandType.WR, bg, ba, row=row, col=col, data=data)


def _open_rows(ch, banks, row=0):
    """Activate a row in several banks, spacing ACTs legally."""
    cycle = 0
    for bg, ba in banks:
        cmd = act(bg, ba, row)
        cycle = max(cycle, ch.earliest_issue(cmd))
        ch.issue(cmd, cycle)
        cycle += 1
    return cycle


class TestGeometry:
    def test_sixteen_banks(self, ch):
        assert len(ch.banks) == BANKS_PER_PCH == 16

    def test_bank_lookup(self, ch):
        assert ch.bank(2, 3) is ch.banks[11]


class TestColumnCadence:
    def test_tccd_s_different_bank_group(self, ch):
        t = HBM2_1GHZ
        _open_rows(ch, [(0, 0), (1, 0)])
        # Wait until both banks are column-ready so only the bus constrains.
        c0 = max(ch.earliest_issue(rd(0, 0)), ch.earliest_issue(rd(1, 0)))
        ch.issue(rd(0, 0), c0)
        assert ch.earliest_issue(rd(1, 0)) == c0 + t.tccd_s

    def test_tccd_l_same_bank_group(self, ch):
        t = HBM2_1GHZ
        _open_rows(ch, [(0, 0), (0, 1)])
        c0 = max(ch.earliest_issue(rd(0, 0)), ch.earliest_issue(rd(0, 1)))
        ch.issue(rd(0, 0), c0)
        assert ch.earliest_issue(rd(0, 1)) == c0 + t.tccd_l

    def test_early_column_raises(self, ch):
        _open_rows(ch, [(0, 0)])
        c0 = ch.earliest_issue(rd(0, 0))
        ch.issue(rd(0, 0), c0)
        with pytest.raises(TimingViolation):
            ch.issue(rd(0, 0), c0 + 1)

    def test_write_to_read_turnaround(self, ch):
        t = HBM2_1GHZ
        _open_rows(ch, [(0, 0), (1, 0)])
        c0 = max(ch.earliest_issue(wr(0, 0)), ch.earliest_issue(rd(1, 0)))
        ch.issue(wr(0, 0), c0)
        # WR -> RD pays CWL + burst + tWTR, more than tCCD_S.
        bound = ch.earliest_issue(rd(1, 0))
        assert bound == c0 + t.cwl + t.burst_cycles + t.twtr
        assert bound > c0 + t.tccd_s

    def test_read_to_write_turnaround(self, ch):
        t = HBM2_1GHZ
        _open_rows(ch, [(0, 0), (1, 0)])
        c0 = max(ch.earliest_issue(rd(0, 0)), ch.earliest_issue(wr(1, 0)))
        ch.issue(rd(0, 0), c0)
        assert ch.earliest_issue(wr(1, 0)) == c0 + max(t.trtw, t.tccd_s)


class TestActivateSpacing:
    def test_trrd_s(self, ch):
        t = HBM2_1GHZ
        ch.issue(act(0, 0), 0)
        assert ch.earliest_issue(act(1, 0)) == t.trrd_s

    def test_trrd_l(self, ch):
        t = HBM2_1GHZ
        ch.issue(act(0, 0), 0)
        assert ch.earliest_issue(act(0, 1)) == t.trrd_l

    def test_tfaw(self, ch):
        t = HBM2_1GHZ
        cycle = 0
        # Four activates to different bank groups at tRRD_S spacing.
        for i, (bg, ba) in enumerate([(0, 0), (1, 0), (2, 0), (3, 0)]):
            cycle = max(cycle, ch.earliest_issue(act(bg, ba)))
            ch.issue(act(bg, ba), cycle)
        first = cycle - 3 * t.trrd_s
        # The fifth ACT must wait for the four-activate window.
        assert ch.earliest_issue(act(0, 1)) >= first + t.tfaw


class TestBroadcastCommands:
    def test_prea_closes_all(self, ch):
        _open_rows(ch, [(0, 0), (1, 1)])
        cycle = max(bank.earliest_pre() for bank in ch.banks)
        ch.issue(Command(CommandType.PREA), cycle)
        assert ch.all_banks_idle

    def test_refresh_blocks_activates(self, ch):
        t = HBM2_1GHZ
        ch.issue(Command(CommandType.REF), 0)
        assert ch.earliest_issue(act(0, 0)) >= t.trfc


class TestDataPath:
    def test_write_read_roundtrip(self, ch):
        t = HBM2_1GHZ
        _open_rows(ch, [(2, 3)])
        data = np.arange(32, dtype=np.uint8)
        cmd = Command(CommandType.WR, 2, 3, row=0, col=5, data=data)
        c = ch.earliest_issue(cmd)
        ch.issue(cmd, c)
        out = ch.issue(rd(2, 3, 0, 5), ch.earliest_issue(rd(2, 3, 0, 5)))
        assert np.array_equal(out, data)

    def test_wr_without_data_raises(self, ch):
        _open_rows(ch, [(0, 0)])
        cmd = Command(CommandType.WR, 0, 0, row=0, col=0)
        with pytest.raises(ValueError):
            ch.issue(cmd, ch.earliest_issue(cmd))

    def test_command_counters(self, ch):
        _open_rows(ch, [(0, 0)])
        ch.issue(rd(0, 0), ch.earliest_issue(rd(0, 0)))
        assert ch.cmd_counts[CommandType.ACT] == 1
        assert ch.cmd_counts[CommandType.RD] == 1


class TestTimingParams:
    def test_scaled_to(self):
        fast = HBM2_1GHZ.scaled_to(1.2)
        assert fast.tck_ns == pytest.approx(1 / 1.2)
        assert fast.trcd == HBM2_1GHZ.trcd  # cycle counts unchanged

    def test_ab_bandwidth_factor(self):
        # 8 operating banks at tCCD_L vs 1 at tCCD_S -> x4 (Table V).
        assert HBM2_1GHZ.ab_bandwidth_factor == 4.0

    def test_ab_column_cadence(self):
        assert HBM2_1GHZ.column_cadence_ab == HBM2_1GHZ.tccd_l

    def test_custom_tccd_changes_factor(self):
        slow = TimingParams(tccd_s=2, tccd_l=8)
        assert slow.ab_bandwidth_factor == 2.0
