"""Property test: the DRAM subsystem behaves like memory.

Whatever the controller reorders, refreshes, or row-buffers, the value a
read returns must be the value of the most recent *program-order* write to
that location within its fence epoch — checked against a flat dictionary
model over randomized request streams.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.bank import BankConfig
from repro.dram.controller import MemoryController, SchedulerPolicy
from repro.dram.pseudochannel import PseudoChannel
from repro.dram.timing import HBM2_1GHZ


@st.composite
def request_streams(draw):
    """A random stream of writes/reads/fences over a tiny address space."""
    n = draw(st.integers(5, 40))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["write", "read", "fence"]))
        bg = draw(st.integers(0, 1))
        ba = draw(st.integers(0, 1))
        row = draw(st.integers(0, 3))
        col = draw(st.integers(0, 7))
        value = draw(st.integers(0, 255))
        ops.append((kind, bg, ba, row, col, value))
    return ops


def _run(ops, policy, seed=0, refresh=False):
    channel = PseudoChannel(HBM2_1GHZ, BankConfig(num_rows=8))
    mc = MemoryController(channel, policy=policy, seed=seed, refresh=refresh)
    flat = {}
    expected = {}
    tag = 0
    for kind, bg, ba, row, col, value in ops:
        key = (bg, ba, row, col)
        if kind == "write":
            mc.write(bg, ba, row, col, np.full(32, value, dtype=np.uint8))
            # Writes and reads to the SAME location are only ordered across
            # fences, so fence before dependent accesses.
            mc.fence()
            flat[key] = value
        elif kind == "read":
            mc.read(bg, ba, row, col, tag=tag)
            mc.fence()
            expected[tag] = flat.get(key, 0)
            tag += 1
        else:
            mc.fence()
    result = mc.drain()
    for t, value in expected.items():
        got = result.read_data[t]
        assert (got == value).all(), f"tag {t}: expected {value}, got {got[0]}"


class TestMemorySemantics:
    @given(request_streams())
    @settings(max_examples=40, deadline=None)
    def test_frfcfs_preserves_data(self, ops):
        _run(ops, SchedulerPolicy.FRFCFS)

    @given(request_streams())
    @settings(max_examples=25, deadline=None)
    def test_shuffle_preserves_data(self, ops):
        _run(ops, SchedulerPolicy.SHUFFLE, seed=7)

    @given(request_streams())
    @settings(max_examples=25, deadline=None)
    def test_fcfs_preserves_data(self, ops):
        _run(ops, SchedulerPolicy.FCFS)

    @given(request_streams())
    @settings(max_examples=15, deadline=None)
    def test_refresh_preserves_data(self, ops):
        _run(ops, SchedulerPolicy.FRFCFS, refresh=True)
