"""Tests for the DRAM bank state machine (repro.dram.bank)."""

import numpy as np
import pytest

from repro.dram.bank import Bank, BankConfig, BankState, TimingViolation
from repro.dram.timing import HBM2_1GHZ


@pytest.fixture
def bank():
    return Bank(BankConfig(num_rows=32), HBM2_1GHZ)


def _col(value=0):
    return np.full(32, value, dtype=np.uint8)


class TestGeometry:
    def test_default_geometry(self):
        cfg = BankConfig()
        assert cfg.cols_per_row == 32
        assert cfg.row_bytes == 1024
        assert cfg.col_bytes == 32

    def test_peek_out_of_range_row(self, bank):
        with pytest.raises(IndexError):
            bank.peek(100, 0)

    def test_poke_wrong_size(self, bank):
        with pytest.raises(ValueError):
            bank.poke(0, 0, np.zeros(16, dtype=np.uint8))

    def test_rows_materialise_lazily(self, bank):
        assert len(bank._rows) == 0
        bank.peek(3, 0)
        assert 3 in bank._rows


class TestStateMachine:
    def test_initially_idle(self, bank):
        assert bank.state is BankState.IDLE
        assert bank.open_row is None

    def test_activate_opens_row(self, bank):
        bank.activate(5, 0)
        assert bank.state is BankState.ACTIVE
        assert bank.open_row == 5

    def test_double_activate_raises(self, bank):
        bank.activate(5, 0)
        with pytest.raises(TimingViolation):
            bank.activate(6, 100)

    def test_column_without_open_row_raises(self, bank):
        with pytest.raises(TimingViolation):
            bank.read(0, 0, 100)

    def test_column_to_wrong_row_raises(self, bank):
        bank.activate(5, 0)
        with pytest.raises(TimingViolation):
            bank.read(6, 0, 100)

    def test_precharge_closes(self, bank):
        t = HBM2_1GHZ
        bank.activate(5, 0)
        bank.precharge(t.tras)
        assert bank.state is BankState.IDLE
        assert bank.open_row is None

    def test_precharge_idle_is_noop(self, bank):
        bank.precharge(0)
        assert bank.state is BankState.IDLE


class TestTiming:
    def test_read_before_trcd_raises(self, bank):
        bank.activate(5, 0)
        with pytest.raises(TimingViolation):
            bank.read(5, 0, HBM2_1GHZ.trcd - 1)

    def test_read_at_trcd_ok(self, bank):
        bank.activate(5, 0)
        bank.read(5, 0, HBM2_1GHZ.trcd)

    def test_precharge_before_tras_raises(self, bank):
        bank.activate(5, 0)
        with pytest.raises(TimingViolation):
            bank.precharge(HBM2_1GHZ.tras - 1)

    def test_activate_after_precharge_waits_trp(self, bank):
        t = HBM2_1GHZ
        bank.activate(5, 0)
        bank.precharge(t.tras)
        with pytest.raises(TimingViolation):
            bank.activate(6, t.tras + t.trp - 1)
        bank.activate(6, max(t.tras + t.trp, t.trc))

    def test_trc_enforced(self, bank):
        t = HBM2_1GHZ
        bank.activate(5, 0)
        bank.precharge(t.tras)
        assert bank.next_act >= t.trc

    def test_write_recovery_delays_precharge(self, bank):
        t = HBM2_1GHZ
        bank.activate(5, 0)
        bank.write(5, 0, _col(), t.trcd)
        assert bank.next_pre >= t.trcd + t.cwl + t.burst_cycles + t.twr

    def test_read_to_precharge(self, bank):
        t = HBM2_1GHZ
        bank.activate(5, 0)
        bank.read(5, 0, t.trcd)
        assert bank.next_pre >= t.trcd + t.trtp

    def test_touch_column_applies_timing(self, bank):
        t = HBM2_1GHZ
        bank.activate(5, 0)
        bank.touch_column(5, t.trcd, is_write=True)
        assert bank.next_pre >= t.trcd + t.cwl + t.burst_cycles + t.twr

    def test_touch_column_checks_row(self, bank):
        bank.activate(5, 0)
        with pytest.raises(TimingViolation):
            bank.touch_column(6, HBM2_1GHZ.trcd, is_write=False)


class TestData:
    def test_write_then_read(self, bank):
        t = HBM2_1GHZ
        data = np.arange(32, dtype=np.uint8)
        bank.activate(5, 0)
        bank.write(5, 3, data, t.trcd)
        out = bank.read(5, 3, t.trcd + t.tccd_l)
        assert np.array_equal(out, data)

    def test_data_persists_across_precharge(self, bank):
        t = HBM2_1GHZ
        data = np.arange(32, dtype=np.uint8)
        bank.activate(5, 0)
        bank.write(5, 3, data, t.trcd)
        bank.precharge(bank.next_pre)
        bank.activate(5, bank.next_act)
        out = bank.read(5, 3, bank.next_act + t.trcd)
        assert np.array_equal(out, data)

    def test_unwritten_columns_read_zero(self, bank):
        bank.activate(5, 0)
        assert bank.read(5, 7, HBM2_1GHZ.trcd).sum() == 0

    def test_counters(self, bank):
        t = HBM2_1GHZ
        bank.activate(5, 0)
        bank.write(5, 0, _col(), t.trcd)
        bank.read(5, 0, t.trcd + t.tccd_l)
        assert bank.act_count == 1
        assert bank.wr_count == 1
        assert bank.rd_count == 1

    def test_peek_does_not_count(self, bank):
        bank.peek(0, 0)
        assert bank.rd_count == 0
