"""Tests for the ECC-protected bank and ECC-enabled PIM devices."""

import numpy as np
import pytest

from repro.dram.bank import BankConfig
from repro.dram.device import DeviceConfig
from repro.dram.ecc import EccBank, UncorrectableError
from repro.dram.timing import HBM2_1GHZ
from repro.pim.device import PimHbmDevice


@pytest.fixture
def bank():
    return EccBank(BankConfig(num_rows=16), HBM2_1GHZ)


def _col(seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, 32, dtype=np.uint8)


class TestEccBank:
    def test_clean_roundtrip(self, bank):
        data = _col(1)
        bank.poke(2, 3, data)
        assert np.array_equal(bank.peek(2, 3), data)
        assert bank.ecc_stats.corrected == 0

    def test_single_bit_error_corrected(self, bank):
        data = _col(2)
        bank.poke(0, 0, data)
        bank.inject_error(0, 0, bit=37)
        out = bank.peek(0, 0)
        assert np.array_equal(out, data)
        assert bank.ecc_stats.corrected == 1

    def test_scrubbing_repairs_the_cells(self, bank):
        data = _col(3)
        bank.poke(0, 0, data)
        bank.inject_error(0, 0, bit=100)
        bank.peek(0, 0)  # corrects and scrubs
        # A second read sees clean cells: no further correction needed.
        before = bank.ecc_stats.corrected
        bank.peek(0, 0)
        assert bank.ecc_stats.corrected == before

    def test_one_error_per_word_all_corrected(self, bank):
        data = _col(4)
        bank.poke(0, 0, data)
        for word in range(4):
            bank.inject_error(0, 0, bit=word * 64 + word)
        assert np.array_equal(bank.peek(0, 0), data)
        assert bank.ecc_stats.corrected == 4

    def test_double_bit_error_detected(self, bank):
        bank.poke(0, 0, _col(5))
        bank.inject_error(0, 0, bit=0)
        bank.inject_error(0, 0, bit=1)
        with pytest.raises(UncorrectableError):
            bank.peek(0, 0)
        assert bank.ecc_stats.detected_uncorrectable == 1

    def test_double_bit_error_nonfatal_mode(self):
        bank = EccBank(BankConfig(num_rows=16), HBM2_1GHZ,
                       raise_on_uncorrectable=False)
        bank.poke(0, 0, _col(6))
        bank.inject_error(0, 0, bit=10)
        bank.inject_error(0, 0, bit=11)
        bank.peek(0, 0)  # detected, reported, not raised
        assert bank.ecc_stats.detected_uncorrectable == 1

    def test_check_array_error_corrected(self, bank):
        data = _col(7)
        bank.poke(1, 1, data)
        bank.inject_check_error(1, 1, word=2, bit=3)
        assert np.array_equal(bank.peek(1, 1), data)
        assert bank.ecc_stats.corrected == 1

    def test_unwritten_column_is_consistent(self, bank):
        # All-zero data has an all-zero check byte: fresh rows decode clean.
        assert bank.peek(5, 5).sum() == 0
        assert bank.ecc_stats.detected_uncorrectable == 0

    def test_command_path_is_protected(self, bank):
        """read()/write() route through the protected peek/poke."""
        t = HBM2_1GHZ
        data = _col(8)
        bank.activate(3, 0)
        bank.write(3, 0, data, t.trcd)
        bank.inject_error(3, 0, bit=77)
        out = bank.read(3, 0, t.trcd + t.tccd_l)
        assert np.array_equal(out, data)
        assert bank.ecc_stats.corrected == 1


class TestEccPimDevice:
    def test_device_config_flag(self):
        device = PimHbmDevice(
            DeviceConfig(num_pchs=1, bank_config=BankConfig(num_rows=64), ecc=True)
        )
        assert isinstance(device.pch(0).banks[0], EccBank)

    def test_gemv_survives_injected_faults(self):
        """Section VIII: PIM accesses go through the same granularity as
        host accesses, so on-die ECC protects a live PIM kernel."""
        from repro.stack.blas import gemv_reference
        from repro.stack.kernels import GemvKernel
        from repro.stack.runtime import PimSystem
        from repro.dram.bank import BankConfig as BC
        from repro.dram.device import DeviceConfig as DC
        from repro.host.processor import HostSystem

        class EccPimSystem(PimSystem):
            def __init__(self):
                from repro.stack.driver import PimDeviceDriver
                from repro.stack.runtime import PimExecutor

                device = PimHbmDevice(
                    DC(num_pchs=1, bank_config=BC(num_rows=128), ecc=True)
                )
                HostSystem.__init__(self, device)
                self.driver = PimDeviceDriver(device)
                self.executor = PimExecutor(self)

        system = EccPimSystem()
        rng = np.random.default_rng(0)
        w = (rng.standard_normal((128, 64)) * 0.2).astype(np.float16)
        x = (rng.standard_normal(64) * 0.2).astype(np.float16)
        kernel = GemvKernel(system, 128, 64)
        kernel.load_weights(w)
        # Flip one stored weight bit in each of three banks.
        for bank_index in (0, 2, 4):
            system.device.pch(0).banks[bank_index].inject_error(
                kernel.plan.weight_base_row, 0, bit=11 + bank_index
            )
        y, _ = kernel(x)
        assert np.array_equal(y, gemv_reference(w, x, num_pchs=1))
        corrected = sum(
            b.ecc_stats.corrected for b in system.device.pch(0).banks
            if isinstance(b, EccBank)
        )
        assert corrected >= 3
