"""Tests for device assembly and statistics aggregation."""

import pytest

from repro.dram import (
    BankConfig,
    CommandStats,
    CommandType,
    DeviceConfig,
    HbmDevice,
    MemoryController,
    collect_stats,
)
from repro.dram.timing import HBM2_1GHZ, HBM2_1P2GHZ


class TestDeviceConfig:
    def test_default_capacity(self):
        cfg = DeviceConfig()
        # 8192 rows x 1 KiB x 16 banks x 16 pCHs = 2 GiB per rank.
        assert cfg.capacity_bytes == 2 * 1024**3

    def test_rank_scaling(self):
        assert DeviceConfig(ranks=2).capacity_bytes == 4 * 1024**3

    def test_io_bandwidth_1ghz(self):
        # 32 B per 2 cycles per pCH at 1 GHz x 16 pCH = 256 GB/s.
        assert DeviceConfig(timing=HBM2_1GHZ).io_bandwidth_bytes_per_sec == pytest.approx(256e9)

    def test_io_bandwidth_1p2ghz(self):
        # Table V: 307.2 GB/s at 1.2 GHz.
        assert DeviceConfig(timing=HBM2_1P2GHZ).io_bandwidth_bytes_per_sec == pytest.approx(307.2e9)


class TestDevice:
    def test_sixteen_pchs_by_default(self):
        assert len(HbmDevice()) == 16

    def test_small_device_for_tests(self):
        device = HbmDevice(DeviceConfig(num_pchs=2, bank_config=BankConfig(num_rows=16)))
        assert len(device) == 2
        assert device.pch(0) is not device.pch(1)


class TestStats:
    def test_collect_stats_sums_channels(self):
        device = HbmDevice(DeviceConfig(num_pchs=2, bank_config=BankConfig(num_rows=16)))
        for i in range(2):
            mc = MemoryController(device.pch(i))
            mc.read(0, 0, 0, 0)
            mc.drain()
        stats = collect_stats(device.pchs)
        assert stats.activates == 2
        assert stats.reads == 2
        assert stats.bytes_transferred == 2 * 32

    def test_add_accumulates(self):
        a = CommandStats()
        a.counts[CommandType.RD] = 3
        b = CommandStats()
        b.counts[CommandType.RD] = 4
        b.counts[CommandType.WR] = 1
        a.add(b)
        assert a.reads == 7
        assert a.writes == 1
        assert a.column_commands == 8
