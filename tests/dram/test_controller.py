"""Tests for the FR-FCFS memory controller (repro.dram.controller)."""

import numpy as np
import pytest

from repro.dram.bank import BankConfig
from repro.dram.commands import CommandType
from repro.dram.controller import MemOp, MemoryController, Request, SchedulerPolicy
from repro.dram.pseudochannel import PseudoChannel
from repro.dram.timing import HBM2_1GHZ


def make_controller(**kwargs):
    channel = PseudoChannel(HBM2_1GHZ, BankConfig(num_rows=64))
    return MemoryController(channel, **kwargs), channel


def _data(value=0):
    return np.full(32, value, dtype=np.uint8)


class TestBasicOperation:
    def test_single_read_returns_data(self):
        mc, ch = make_controller()
        ch.bank(0, 0).poke(3, 4, _data(7))
        mc.read(0, 0, 3, 4, tag="r")
        result = mc.drain()
        assert np.array_equal(result.read_data["r"], _data(7))

    def test_write_then_read(self):
        mc, _ = make_controller()
        mc.write(0, 0, 3, 4, _data(9), tag="w")
        mc.read(0, 0, 3, 4, tag="r")
        result = mc.drain()
        assert np.array_equal(result.read_data["r"], _data(9))

    def test_command_counts(self):
        mc, _ = make_controller()
        mc.read(0, 0, 0, 0)
        mc.read(0, 0, 0, 1)
        result = mc.drain()
        assert result.command_count[CommandType.ACT] == 1
        assert result.command_count[CommandType.RD] == 2
        assert result.column_commands == 2

    def test_row_hit_tracking(self):
        mc, _ = make_controller()
        mc.read(0, 0, 0, 0)
        mc.read(0, 0, 0, 1)  # hit
        mc.read(0, 0, 1, 0)  # conflict -> miss
        result = mc.drain()
        assert result.row_hits == 1
        assert result.row_misses == 2

    def test_drain_empty_queue(self):
        mc, _ = make_controller()
        result = mc.drain()
        assert result.column_commands == 0


class TestRowHitFirstScheduling:
    def test_frfcfs_prefers_row_hit(self):
        mc, _ = make_controller(policy=SchedulerPolicy.FRFCFS)
        mc.read(0, 0, 0, 0, tag=0)  # opens row 0
        mc.read(0, 0, 1, 0, tag=1)  # conflict
        mc.read(0, 0, 0, 1, tag=2)  # hit on row 0
        result = mc.drain()
        order = [req.tag for _, req in result.issue_order]
        assert order == [0, 2, 1]  # the hit jumps the conflict

    def test_fcfs_keeps_arrival_order(self):
        mc, _ = make_controller(policy=SchedulerPolicy.FCFS)
        mc.read(0, 0, 0, 0, tag=0)
        mc.read(0, 0, 1, 0, tag=1)
        mc.read(0, 0, 0, 1, tag=2)
        result = mc.drain()
        order = [req.tag for _, req in result.issue_order]
        assert order == [0, 1, 2]

    def test_frfcfs_faster_than_fcfs_on_conflict_stream(self):
        def run(policy):
            mc, _ = make_controller(policy=policy)
            for i in range(8):
                mc.read(0, 0, i % 2, i, tag=i)
            return mc.drain().cycles

        assert run(SchedulerPolicy.FRFCFS) < run(SchedulerPolicy.FCFS)

    def test_shuffle_reorders_deterministically(self):
        def order(seed):
            mc, _ = make_controller(policy=SchedulerPolicy.SHUFFLE, seed=seed)
            for i in range(8):
                mc.read(0, 0, 0, i, tag=i)
            return [req.tag for _, req in mc.drain().issue_order]

        assert order(1) == order(1)
        assert order(1) != list(range(8)) or order(2) != list(range(8))


class TestFences:
    def test_fence_blocks_reordering(self):
        mc, _ = make_controller(policy=SchedulerPolicy.SHUFFLE, seed=0)
        mc.read(0, 0, 0, 0, tag="a")
        mc.fence()
        mc.read(0, 0, 0, 1, tag="b")
        result = mc.drain()
        order = [req.tag for _, req in result.issue_order]
        assert order == ["a", "b"]

    def test_shuffle_confined_to_epoch(self):
        mc, _ = make_controller(policy=SchedulerPolicy.SHUFFLE, seed=3)
        for i in range(4):
            mc.read(0, 0, 0, i, tag=("e0", i))
        mc.fence()
        for i in range(4):
            mc.read(0, 0, 0, i, tag=("e1", i))
        result = mc.drain()
        epochs = [req.tag[0] for _, req in result.issue_order]
        assert epochs == ["e0"] * 4 + ["e1"] * 4

    def test_fence_penalty_stalls(self):
        def run(penalty):
            mc, _ = make_controller(fence_penalty=penalty)
            mc.read(0, 0, 0, 0)
            mc.fence()
            mc.read(0, 0, 0, 1)
            return mc.drain().cycles

        # The stall absorbs the column cadence, so the delta is the penalty
        # minus the tCCD the second read would have waited anyway.
        delta = run(50) - run(0)
        assert 50 - HBM2_1GHZ.tccd_l <= delta <= 50

    def test_fence_count(self):
        mc, _ = make_controller()
        mc.fence()
        mc.fence()
        assert mc.fence_count == 2

    def test_trailing_fence_costs_nothing(self):
        mc, _ = make_controller(fence_penalty=100)
        mc.read(0, 0, 0, 0)
        baseline = mc.drain().cycles
        mc.fence()
        assert mc.drain().cycles == baseline


class TestWindow:
    def test_window_limits_lookahead(self):
        # With window=1, FR-FCFS degenerates to FCFS.
        mc, _ = make_controller(policy=SchedulerPolicy.FRFCFS, window=1)
        mc.read(0, 0, 0, 0, tag=0)
        mc.read(0, 0, 1, 0, tag=1)
        mc.read(0, 0, 0, 1, tag=2)
        order = [req.tag for _, req in mc.drain().issue_order]
        assert order == [0, 1, 2]


class TestHelpers:
    def test_closed_page_access(self):
        mc, ch = make_controller()
        mc.closed_page_access(0, 0, 5)
        assert ch.bank(0, 0).open_row is None
        assert ch.cmd_counts[CommandType.ACT] == 1
        assert ch.cmd_counts[CommandType.PRE] == 1

    def test_closed_page_access_requires_empty_queue(self):
        mc, _ = make_controller()
        mc.read(0, 0, 0, 0)
        with pytest.raises(RuntimeError):
            mc.closed_page_access(0, 0, 5)

    def test_precharge_all(self):
        mc, ch = make_controller()
        mc.read(0, 0, 0, 0)
        mc.drain()
        assert ch.bank(0, 0).open_row == 0
        mc.precharge_all()
        assert ch.all_banks_idle


class TestBandwidth:
    def test_streaming_reads_approach_tccd_s_cadence(self):
        """Row-hit reads across bank groups run at ~1 column per tCCD_S."""
        mc, _ = make_controller()
        n = 64
        for i in range(n):
            mc.read(i % 4, 0, 0, (i // 4) % 32)  # rotate bank groups
        cycles = mc.drain().cycles
        ideal = n * HBM2_1GHZ.tccd_s
        assert cycles <= ideal * 1.5

    def test_single_bank_stream_runs_at_tccd_l(self):
        mc, _ = make_controller()
        n = 32
        for i in range(n):
            mc.read(0, 0, 0, i % 32)
        cycles = mc.drain().cycles
        assert cycles >= n * HBM2_1GHZ.tccd_l * 0.9

    def test_bank_parallel_reads_beat_single_bank(self):
        """Four row openings overlap across banks but serialise in one."""

        def run(spread):
            mc, _ = make_controller()
            for i in range(32):
                bg = i // 8 if spread else 0
                mc.read(bg, 0, i // 8, i % 8)
            return mc.drain().cycles

        assert run(spread=True) < run(spread=False)
