"""Tests for the trace-driven (DRAMSim2-style) simulator."""

import pytest

from repro.dram.timing import HBM2_1P2GHZ
from repro.dse.tracesim import (
    TraceCommand,
    TraceReplayer,
    elementwise_trace,
    format_trace,
    gemv_trace,
    parse_trace,
    replay_variant_elementwise,
    replay_variant_gemv,
)


class TestTraceFormat:
    def test_roundtrip(self):
        commands = [
            TraceCommand("ACT", row=3),
            TraceCommand("RD", row=3, col=7),
            TraceCommand("PRE"),
        ]
        assert parse_trace(format_trace(commands)) == commands

    def test_comments_and_blank_lines(self):
        text = "# header\nACT 0 0 1 0\n\nRD 0 0 1 5  # inline\n"
        commands = parse_trace(text)
        assert len(commands) == 2
        assert commands[1].col == 5

    def test_unknown_command(self):
        with pytest.raises(ValueError):
            parse_trace("FROB 0 0 0 0")

    def test_short_lines_default_zero(self):
        (cmd,) = parse_trace("PREA")
        assert (cmd.bg, cmd.ba, cmd.row, cmd.col) == (0, 0, 0, 0)


class TestReplayer:
    def test_column_cadence(self):
        trace = parse_trace("ACT 0 0 0 0\n" + "\n".join(
            f"RD 0 0 0 {i}" for i in range(8)
        ))
        cycles = TraceReplayer(HBM2_1P2GHZ).replay(trace)
        t = HBM2_1P2GHZ
        # 8 same-bank reads at tCCD_L after tRCD.
        assert cycles == t.trcd + 7 * t.tccd_l

    def test_timing_parameter_sensitivity(self):
        from dataclasses import replace

        trace = parse_trace("ACT 0 0 0 0\n" + "\n".join(
            f"RD 0 0 0 {i}" for i in range(16)
        ))
        fast = TraceReplayer(replace(HBM2_1P2GHZ, tccd_l=2)).replay(trace)
        slow = TraceReplayer(replace(HBM2_1P2GHZ, tccd_l=8)).replay(trace)
        assert slow > fast

    def test_bandwidth_helper(self):
        trace = parse_trace("ACT 0 0 0 0\n" + "\n".join(
            f"RD 0 0 0 {i % 32}" for i in range(64)
        ))
        bw = TraceReplayer(HBM2_1P2GHZ).bandwidth(trace)
        # ~32 B per tCCD_L=4 cycles = 8 B/cycle at best.
        assert 5.0 <= bw <= 8.5


class TestGenerators:
    def test_gemv_trace_structure(self):
        trace = gemv_trace(128, 128, num_pchs=1)
        kinds = [c.kind for c in trace]
        assert kinds.count("RD") == 16 * 8  # 16 chunks x 8 MACs
        assert kinds.count("WR") == 16 * 8 + 8  # staging + epilogue
        assert kinds[0] == "ACT"

    def test_srw_trace_has_no_staging_writes(self):
        from repro.dse.variants import VARIANTS

        trace = gemv_trace(128, 128, num_pchs=1, variant=VARIANTS["PIM-HBM-SRW"])
        kinds = [c.kind for c in trace]
        assert kinds.count("WR") == 8  # epilogue only

    def test_elementwise_trace_counts(self):
        trace = elementwise_trace(8 * 1024 * 16, num_pchs=1)  # 16 groups...
        columns = [c for c in trace if c.kind in ("RD", "WR")]
        # 24 commands per group.
        assert len(columns) % 24 == 0


class TestVariantUpperBounds:
    """The Fig. 14 upper bounds, cycle-level (no fences, no host)."""

    def test_srw_doubles_gemv_upper_bound(self):
        base = replay_variant_gemv("PIM-HBM", 512, 512, 1, HBM2_1P2GHZ)
        srw = replay_variant_gemv("PIM-HBM-SRW", 512, 512, 1, HBM2_1P2GHZ)
        assert 1.7 <= base / srw <= 2.1

    def test_2x_halves_gemv_upper_bound(self):
        base = replay_variant_gemv("PIM-HBM", 512, 512, 1, HBM2_1P2GHZ)
        two_x = replay_variant_gemv("PIM-HBM-2x", 512, 512, 1, HBM2_1P2GHZ)
        assert 1.7 <= base / two_x <= 2.1

    def test_2ba_improves_add_upper_bound(self):
        n = 512 * 1024
        base = replay_variant_elementwise("PIM-HBM", n, 1, HBM2_1P2GHZ)
        two_ba = replay_variant_elementwise("PIM-HBM-2BA", n, 1, HBM2_1P2GHZ)
        assert 1.3 <= base / two_ba <= 1.7

    def test_2ba_leaves_bn_unchanged(self):
        n = 512 * 1024
        base = replay_variant_elementwise("PIM-HBM", n, 1, HBM2_1P2GHZ, bn=True)
        two_ba = replay_variant_elementwise("PIM-HBM-2BA", n, 1, HBM2_1P2GHZ, bn=True)
        assert base == two_ba
