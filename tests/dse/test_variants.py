"""Tests for the Fig. 14 design-space exploration."""

import pytest

from repro.apps.microbench import ADD_SIZES, GEMV_SIZES
from repro.dse.variants import VARIANTS, VariantLatencyModel, dse_speedups
from repro.perf.latency import PIM_HBM


@pytest.fixture(scope="module")
def results():
    return dse_speedups()


def gain(results, variant, bench):
    return results[variant][bench] / results["PIM-HBM"][bench]


class TestVariantDefinitions:
    def test_four_configurations(self):
        assert set(VARIANTS) == {
            "PIM-HBM", "PIM-HBM-2x", "PIM-HBM-2BA", "PIM-HBM-SRW",
        }

    def test_2x_area_cost(self):
        """Paper: PIM-HBM-2x increases the die size by 24%."""
        assert VARIANTS["PIM-HBM-2x"].die_area_increase == 0.24

    def test_2ba_power_cost(self):
        """Paper: PIM-HBM-2BA consumes 60% more power."""
        assert VARIANTS["PIM-HBM-2BA"].power_increase == 0.60

    def test_srw_halves_gemv_commands(self):
        srw = VARIANTS["PIM-HBM-SRW"]
        assert srw.gemv_chunk_commands == 8
        assert VARIANTS["PIM-HBM"].gemv_chunk_commands == 16

    def test_2ba_removes_fill_phase(self):
        assert VARIANTS["PIM-HBM-2BA"].add_group == (16, 2)
        assert VARIANTS["PIM-HBM"].add_group == (24, 3)


class TestFig14Shapes:
    def test_all_variants_beat_host(self, results):
        for variant, row in results.items():
            for g in GEMV_SIZES:
                assert row[g.name] > 1.0, (variant, g.name)

    def test_2x_is_best_overall(self, results):
        """Paper: 2x gives ~40% higher geo-mean than baseline PIM."""
        g = gain(results, "PIM-HBM-2x", "geomean")
        assert g == max(
            gain(results, v, "geomean") for v in VARIANTS if v != "PIM-HBM"
        )
        assert 1.25 <= g <= 1.75

    def test_2ba_geomean_band(self, results):
        """Paper: 2BA gives ~20% higher geo-mean."""
        assert 1.05 <= gain(results, "PIM-HBM-2BA", "geomean") <= 1.30

    def test_srw_geomean_band(self, results):
        """Paper: SRW gives ~10% higher geo-mean."""
        assert 1.05 <= gain(results, "PIM-HBM-SRW", "geomean") <= 1.30

    def test_2ba_helps_add_most(self, results):
        """Paper: 2BA is useful especially for ADD (the FILL bottleneck)."""
        add_gain = gain(results, "PIM-HBM-2BA", "ADD1")
        gemv_gain = gain(results, "PIM-HBM-2BA", "GEMV1")
        assert add_gain > 1.15
        assert gemv_gain == pytest.approx(1.0, abs=0.02)

    def test_srw_helps_gemv_only(self, results):
        """Paper: SRW offers ~25% higher performance especially for GEMV."""
        gemv_gain = gain(results, "PIM-HBM-SRW", "GEMV1")
        add_gain = gain(results, "PIM-HBM-SRW", "ADD1")
        assert gemv_gain > 1.2
        assert add_gain == pytest.approx(1.0, abs=0.02)

    def test_bn_present_in_sweep(self, results):
        assert "BN1" in results["PIM-HBM"]


class TestVariantModel:
    def test_2x_halves_gemv_cycles_asymptotically(self):
        base = VariantLatencyModel(PIM_HBM, VARIANTS["PIM-HBM"])
        two_x = VariantLatencyModel(PIM_HBM, VARIANTS["PIM-HBM-2x"])
        ratio = base.pim_gemv_cycles(8192, 8192) / two_x.pim_gemv_cycles(8192, 8192)
        assert 1.7 <= ratio <= 2.1

    def test_srw_leaves_elementwise_untouched(self):
        base = VariantLatencyModel(PIM_HBM, VARIANTS["PIM-HBM"])
        srw = VariantLatencyModel(PIM_HBM, VARIANTS["PIM-HBM-SRW"])
        n = ADD_SIZES[0].n
        assert base.pim_elementwise_cycles(n, 24, 3) == srw.pim_elementwise_cycles(n, 24, 3)

    def test_baseline_variant_matches_plain_model(self):
        from repro.perf.latency import LatencyModel

        plain = LatencyModel(PIM_HBM)
        variant = VariantLatencyModel(PIM_HBM, VARIANTS["PIM-HBM"])
        assert plain.pim_gemv_cycles(1024, 4096) == variant.pim_gemv_cycles(1024, 4096)
        assert plain.pim_elementwise_cycles(2**21, 24, 3) == variant.pim_elementwise_cycles(2**21, 24, 3)
