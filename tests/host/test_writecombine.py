"""Tests for the write-combining buffer (cache-bypass path)."""

import pytest

from repro.host.writecombine import (
    COLUMN_BYTES,
    WriteCombiningBuffer,
    thread_group_store_pattern,
)


class TestCombining:
    def test_two_halves_make_one_burst(self):
        wc = WriteCombiningBuffer()
        wc.store(0, 16)
        assert wc.stats.column_writes == 0  # still combining
        wc.store(16, 16)
        assert wc.stats.combined_flushes == 1
        assert wc.stats.partial_flushes == 0

    def test_thread_group_combines_perfectly(self):
        """16 threads x 16 B = 8 clean column bursts (Fig. 8(c))."""
        wc = WriteCombiningBuffer()
        for address, nbytes in thread_group_store_pattern(base=0):
            wc.store(address, nbytes)
        assert wc.stats.combined_flushes == 8
        assert wc.stats.partial_flushes == 0
        assert wc.stats.combining_ratio == 1.0

    def test_store_spanning_columns(self):
        wc = WriteCombiningBuffer()
        wc.store(16, 32)  # touches two columns, half each
        wc.fence()
        assert wc.stats.partial_flushes == 2

    def test_flush_order_and_addresses(self):
        wc = WriteCombiningBuffer()
        wc.store(64, 32)
        wc.store(0, 32)
        addresses = [addr for addr, _ in wc.flushed]
        assert addresses == [64, 0]

    def test_full_column_store_flushes_immediately(self):
        wc = WriteCombiningBuffer()
        wc.store(96, 32)
        assert wc.stats.combined_flushes == 1

    def test_invalid_store(self):
        with pytest.raises(ValueError):
            WriteCombiningBuffer().store(0, 0)


class TestFenceSemantics:
    def test_fence_drains_partials(self):
        wc = WriteCombiningBuffer()
        wc.store(0, 16)
        wc.fence()
        assert wc.stats.partial_flushes == 1
        assert wc.stats.fence_flushes == 1

    def test_fence_on_empty_buffer(self):
        wc = WriteCombiningBuffer()
        wc.fence()
        assert wc.stats.column_writes == 0


class TestCapacity:
    def test_lru_eviction(self):
        wc = WriteCombiningBuffer(entries=2)
        wc.store(0, 16)  # column 0, partial
        wc.store(32, 16)  # column 1, partial
        wc.store(64, 16)  # column 2: evicts column 0
        assert wc.stats.capacity_evictions == 1
        assert wc.stats.partial_flushes == 1
        assert wc.flushed[0][0] == 0

    def test_touch_refreshes_lru(self):
        wc = WriteCombiningBuffer(entries=2)
        wc.store(0, 16)
        wc.store(32, 16)
        wc.store(8, 8)  # touch column 0 again
        wc.store(64, 16)  # now column 1 is LRU
        assert wc.flushed[0][0] == 32

    def test_minimum_entries(self):
        with pytest.raises(ValueError):
            WriteCombiningBuffer(entries=0)


class TestScatteredStoresPenalty:
    def test_strided_stores_cannot_combine(self):
        """Stores strided by a full column never share an entry: every
        flush is a partial — the penalty a PIM-unfriendly layout pays."""
        wc = WriteCombiningBuffer(entries=4)
        for i in range(16):
            wc.store(i * 2 * COLUMN_BYTES, 16)
        wc.fence()
        assert wc.stats.combined_flushes == 0
        assert wc.stats.partial_flushes == 16
        assert wc.stats.combining_ratio == 0.0
