"""Tests for the LLC model and the batch-reuse study input (Fig. 10)."""

import pytest

from repro.host.cache import Cache, CacheConfig, simulate_gemv_batch


def small_cache(capacity=4096, ways=4, line=64):
    return Cache(CacheConfig(capacity_bytes=capacity, ways=ways, line_bytes=line))


class TestConfig:
    def test_num_sets(self):
        cfg = CacheConfig(capacity_bytes=4096, line_bytes=64, ways=4)
        assert cfg.num_sets == 16

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            CacheConfig(capacity_bytes=64, line_bytes=64, ways=4).num_sets


class TestCacheBehaviour:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(63)  # same line
        assert not cache.access(64)  # next line

    def test_lru_eviction(self):
        cache = small_cache(capacity=4 * 64, ways=4, line=64)  # 1 set, 4 ways
        for i in range(4):
            cache.access(i * 64 * cache.config.num_sets)
        cache.access(0)  # refresh line 0
        cache.access(4 * 64 * cache.config.num_sets)  # evicts line 1 (LRU)
        assert cache.access(0)
        assert not cache.access(1 * 64 * cache.config.num_sets)

    def test_access_range_touches_every_line(self):
        cache = small_cache()
        cache.access_range(0, 256)
        assert cache.stats.accesses == 4

    def test_flush(self):
        cache = small_cache()
        cache.access(0)
        cache.flush()
        assert not cache.access(0)

    def test_stats(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        cache.access(128)
        assert cache.stats.accesses == 3
        assert cache.stats.hits == 1
        assert cache.stats.miss_rate == pytest.approx(2 / 3)

    def test_empty_stats_miss_rate(self):
        assert small_cache().stats.miss_rate == 0.0


class TestGemvBatchStudy:
    def test_batch1_misses_everything(self):
        """At batch 1 the weight stream has no reuse: miss rate ~100%."""
        cache = Cache(CacheConfig(capacity_bytes=64 * 1024, ways=8))
        stats = simulate_gemv_batch(rows=512, cols=512, batch=1, cache=cache)
        assert stats.miss_rate > 0.95

    def test_batching_creates_reuse(self):
        """Weight blocks survive between batch elements: misses drop."""
        miss = {}
        for batch in (1, 2, 4):
            cache = Cache(CacheConfig(capacity_bytes=64 * 1024, ways=8))
            stats = simulate_gemv_batch(rows=512, cols=512, batch=batch, cache=cache)
            miss[batch] = stats.miss_rate
        assert miss[1] > miss[2] > miss[4]

    def test_tiny_working_set_hits(self):
        """A matrix that fits in the LLC is fully reused across the batch."""
        cache = Cache(CacheConfig(capacity_bytes=1024 * 1024, ways=16))
        stats = simulate_gemv_batch(rows=64, cols=64, batch=4, cache=cache)
        assert stats.miss_rate < 0.5
