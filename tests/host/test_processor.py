"""Tests for the host system model."""

import pytest

from repro.dram.bank import BankConfig
from repro.dram.device import DeviceConfig, HbmDevice
from repro.dram.controller import SchedulerPolicy
from repro.host.processor import HostConfig, HostSystem, ThreadGroup


def small_system(**kwargs):
    device = HbmDevice(DeviceConfig(num_pchs=2, bank_config=BankConfig(num_rows=32)))
    return HostSystem(device, **kwargs)


class TestHostConfig:
    def test_peak_flops(self):
        host = HostConfig()
        # 60 CUs x 128 FLOP/cycle x 1.725 GHz = 13.25 TFLOPS (per-cycle rate).
        assert host.peak_fp16_flops == pytest.approx(60 * 128 * 1.725e9)

    def test_default_efficiencies_below_one(self):
        host = HostConfig()
        assert 0 < host.gemv_bandwidth_efficiency < host.add_bandwidth_efficiency <= 1


class TestThreadGroup:
    def test_group_covers_pim_chunk(self):
        group = ThreadGroup(group_id=0, pch=0)
        # 16 threads x 16 B = one 256-byte PIM chunk per step (Fig. 8).
        assert group.bytes_per_step == 256


class TestHostSystem:
    def test_controller_per_pch(self):
        sys_ = small_system()
        assert sys_.num_pchs == 2
        assert sys_.controller(0) is not sys_.controller(1)

    def test_thread_group_per_pch(self):
        sys_ = small_system()
        assert [g.pch for g in sys_.thread_groups] == [0, 1]

    def test_fence_penalty_from_host_config(self):
        sys_ = small_system()
        expected = round(sys_.host.fence_sync_ns / sys_.device.config.timing.tck_ns)
        assert sys_.controllers[0].fence_penalty == expected

    def test_fence_penalty_override(self):
        sys_ = small_system(fence_penalty_cycles=0)
        assert sys_.controllers[0].fence_penalty == 0

    def test_sync_channels_aligns_clocks(self):
        sys_ = small_system()
        sys_.controller(0).read(0, 0, 0, 0)
        sys_.controller(0).drain()
        assert sys_.controller(0).current_cycle > sys_.controller(1).current_cycle
        now = sys_.sync_channels()
        assert sys_.controller(1)._next_ca >= now

    def test_drain_all(self):
        sys_ = small_system()
        for i in range(2):
            sys_.controller(i).read(0, 0, 0, 0)
        end = sys_.drain_all()
        assert end > 0
        assert all(c.pending == 0 for c in sys_.controllers)

    def test_policy_propagates(self):
        sys_ = small_system(policy=SchedulerPolicy.FCFS)
        assert all(c.policy is SchedulerPolicy.FCFS for c in sys_.controllers)

    def test_cycles_to_ns(self):
        sys_ = small_system()
        assert sys_.cycles_to_ns(100) == pytest.approx(100 * sys_.tck_ns)
