"""Tests for the cycle-level host kernel streams."""

import pytest

from repro.dram.bank import BankConfig
from repro.dram.device import DeviceConfig, HbmDevice
from repro.dram.timing import HBM2_1GHZ
from repro.host.kernels import HostKernels
from repro.host.processor import HostSystem


@pytest.fixture
def system():
    device = HbmDevice(DeviceConfig(num_pchs=1, bank_config=BankConfig(num_rows=256)))
    return HostSystem(device, fence_penalty_cycles=0)


class TestStreamRead:
    def test_achieves_near_peak_bandwidth(self, system):
        """Bank-group rotation sustains ~one column per tCCD_S."""
        kernels = HostKernels(system)
        result = kernels.stream_read(64 * 1024)
        assert result.bandwidth_fraction() > 0.80

    def test_bytes_accounting(self, system):
        result = HostKernels(system).stream_read(1000)
        assert result.bytes_moved == 32 * 32  # 1000 B -> 32 columns
        assert result.column_commands == 32

    def test_working_set_bound(self, system):
        with pytest.raises(ValueError):
            HostKernels(system).stream_read(1 << 30)


class TestGemv:
    def test_gemv_traffic_is_weight_bytes(self, system):
        result = HostKernels(system).gemv(128, 128)
        assert result.bytes_moved == 2 * 128 * 128

    def test_larger_gemv_takes_longer(self, system):
        kernels = HostKernels(system)
        small = kernels.gemv(64, 64).cycles
        # drain state persists; make a fresh system for a clean comparison
        big = kernels.gemv(256, 128).cycles
        assert big > small


class TestElementwiseAdd:
    def test_moves_three_streams(self, system):
        result = HostKernels(system).elementwise_add(4096)
        assert result.bytes_moved == 3 * 4096 * 2

    def test_turnarounds_cost_bandwidth(self, system):
        """The read/read/write pattern cannot quite reach pure-read peak."""
        kernels = HostKernels(system)
        add = kernels.elementwise_add(32 * 1024)
        read = kernels.stream_read(3 * 64 * 1024)
        assert add.bandwidth_fraction() < read.bandwidth_fraction()
        assert add.bandwidth_fraction() > 0.5


class TestMechanisticComparison:
    def test_simulated_pim_vs_ideal_host_gemv(self):
        """The pure-architecture GEMV gain over an *ideal* host is bounded
        by x2 (every other PIM command stages x), minus fence overhead —
        the rest of the paper's 11.2x is host-library inefficiency."""
        import numpy as np
        from repro.stack.kernels import GemvKernel
        from repro.stack.runtime import PimSystem

        m, n = 256, 256
        pim_sys = PimSystem(num_pchs=1, num_rows=256, fence_penalty_cycles=22)
        kernel = GemvKernel(pim_sys, m, n)
        rng = np.random.default_rng(0)
        kernel.load_weights((rng.standard_normal((m, n)) * 0.1).astype(np.float16))
        _, pim_report = kernel((rng.standard_normal(n) * 0.1).astype(np.float16))

        host_device = HbmDevice(
            DeviceConfig(num_pchs=1, bank_config=BankConfig(num_rows=256))
        )
        host_sys = HostSystem(host_device, fence_penalty_cycles=0)
        host_result = HostKernels(host_sys).gemv(m, n)

        ratio = host_result.cycles / pim_report.cycles
        assert 0.4 <= ratio <= 2.0  # architecture alone: near parity to ~2x
