"""Tests for the physical address map (Fig. 15(a))."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.host.memmap import AddressMap, DramAddress


@pytest.fixture
def amap():
    return AddressMap()


class TestGeometry:
    def test_capacity(self, amap):
        # 5 offset + 3 col_low + 0 ch + 4 pch + 2 bg + 2 ba + 2 col_high + 13 row
        assert amap.address_bits == 31
        assert amap.capacity_bytes == 2**31

    def test_pim_chunk_is_256_bytes(self, amap):
        # 8 consecutive 32 B columns in one bank: the GRF-sized chunk of
        # Section V-B.
        assert amap.pim_chunk_bytes == 256


class TestDecode:
    def test_zero(self, amap):
        addr = amap.decode(0)
        assert addr == DramAddress(0, 0, 0, 0, 0, 0, 0)

    def test_offset_bits(self, amap):
        assert amap.decode(31).offset == 31
        assert amap.decode(32).col == 1

    def test_contiguous_chunk_same_bank(self, amap):
        locs = [amap.decode(i * 32) for i in range(8)]
        assert len({(l.pch, l.bg, l.ba, l.row) for l in locs}) == 1
        assert [l.col for l in locs] == list(range(8))

    def test_next_chunk_changes_pch(self, amap):
        a = amap.decode(0)
        b = amap.decode(256)
        assert b.pch == a.pch + 1
        assert (b.bg, b.ba, b.row) == (a.bg, a.ba, a.row)

    def test_out_of_range(self, amap):
        with pytest.raises(ValueError):
            amap.decode(amap.capacity_bytes)
        with pytest.raises(ValueError):
            amap.decode(-1)


class TestEncode:
    def test_encode_decode_specific(self, amap):
        addr = DramAddress(channel=0, pch=5, bg=2, ba=1, row=100, col=17, offset=3)
        assert amap.decode(amap.encode(addr)) == addr

    def test_field_overflow_raises(self, amap):
        with pytest.raises(ValueError):
            amap.encode(DramAddress(0, 99, 0, 0, 0, 0, 0))

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_roundtrip_property(self, address):
        amap = AddressMap()
        assert amap.encode(amap.decode(address)) == address

    def test_stride_for_row(self, amap):
        base = amap.decode(0)
        step = amap.decode(amap.stride_for("row"))
        assert step.row == base.row + 1
        assert (step.pch, step.bg, step.ba, step.col) == (
            base.pch, base.bg, base.ba, base.col,
        )

    def test_stride_unknown_field(self, amap):
        with pytest.raises(KeyError):
            amap.stride_for("nope")


class TestAlternativeMaps:
    def test_multi_channel_map(self):
        amap = AddressMap(channels=2)
        addr = amap.decode(amap.stride_for("ch"))
        assert addr.channel == 1

    def test_bank_interleaved_map(self):
        amap = AddressMap(
            field_order=(
                "offset", "bg", "ba", "col_low", "ch", "pch", "col_high", "row",
            )
        )
        # With bank bits below col_low, consecutive columns change banks.
        a = amap.decode(0)
        b = amap.decode(32)
        assert (a.bg, a.ba) != (b.bg, b.ba)
