"""Differential conformance: every PIM op vs the host golden path.

Hypothesis drives random shapes and seeds through two independent
implementations — the cycle-accurate PIM stack and the bit-equivalent
host references — and requires *bit-exact* agreement.  The serving-level
classes repeat the comparison with fault injection and overload
protection armed: whatever the self-healing and admission layers did,
any result handed back to the caller must still be golden.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultConfig
from repro.stack.blas import (
    PimBlas,
    _sigmoid,
    add_reference,
    bn_reference,
    gemv_reference,
    mul_reference,
    relu_reference,
)
from repro.stack.runtime import PimSystem, SystemConfig
from repro.stack.server import PimServer


def rand(shape, seed, scale=0.25):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * scale).astype(np.float16)


def lstm_cell_reference(w_ih, w_hh, bias, x, h, c, num_pchs):
    """Host golden path of PimBlas.lstm_cell: reference GEMVs plus the
    same host-side gate math (identical expressions, identical dtypes)."""
    gates = (
        gemv_reference(w_ih, x, num_pchs)
        + gemv_reference(w_hh, h, num_pchs)
        + np.asarray(bias, dtype=np.float32)
    )
    hidden = h.shape[0]
    i = _sigmoid(gates[:hidden])
    f = _sigmoid(gates[hidden : 2 * hidden])
    g = np.tanh(gates[2 * hidden : 3 * hidden])
    o = _sigmoid(gates[3 * hidden :])
    c_next = f * np.asarray(c, dtype=np.float32) + i * g
    h_next = o * np.tanh(c_next)
    return h_next.astype(np.float16), c_next.astype(np.float16)


class TestBlasDifferential:
    """Direct BLAS calls, arbitrary shapes, bit-exact vs references."""

    @given(
        m=st.integers(1, 120),
        n=st.integers(1, 80),
        pchs=st.integers(1, 3),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=10, deadline=None)
    def test_gemv(self, m, n, pchs, seed):
        system = PimSystem(num_pchs=pchs, num_rows=128)
        blas = PimBlas(system)
        w, x = rand((m, n), seed), rand(n, seed + 1)
        y, _ = blas.gemv(w, x)
        assert np.array_equal(y, gemv_reference(w, x, num_pchs=pchs))

    @given(
        length=st.integers(1, 3000),
        op=st.sampled_from(["add", "mul"]),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=10, deadline=None)
    def test_binary_elementwise(self, length, op, seed):
        system = PimSystem(num_pchs=1, num_rows=128)
        blas = PimBlas(system)
        a, b = rand(length, seed), rand(length, seed + 1)
        out, _ = getattr(blas, op)(a, b)
        ref = add_reference(a, b) if op == "add" else mul_reference(a, b)
        assert np.array_equal(out, ref)

    @given(length=st.integers(1, 3000), seed=st.integers(0, 2**16))
    @settings(max_examples=8, deadline=None)
    def test_relu(self, length, seed):
        system = PimSystem(num_pchs=1, num_rows=128)
        out, _ = PimBlas(system).relu(rand(length, seed))
        assert np.array_equal(out, relu_reference(rand(length, seed)))

    @given(
        length=st.integers(1, 2000),
        gamma=st.floats(-2.0, 2.0, allow_nan=False),
        beta=st.floats(-1.0, 1.0, allow_nan=False),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=8, deadline=None)
    def test_bn(self, length, gamma, beta, seed):
        system = PimSystem(num_pchs=1, num_rows=128)
        a = rand(length, seed)
        out, _ = PimBlas(system).bn(a, gamma, beta)
        assert np.array_equal(out, bn_reference(a, gamma, beta))

    @given(
        d=st.integers(8, 48),
        h=st.integers(8, 40),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=6, deadline=None)
    def test_lstm_cell(self, d, h, seed):
        system = PimSystem(num_pchs=2, num_rows=256)
        blas = PimBlas(system)
        w_ih, w_hh = rand((4 * h, d), seed), rand((4 * h, h), seed + 1)
        bias = rand(4 * h, seed + 2).astype(np.float32)
        x, h0, c0 = rand(d, seed + 3), rand(h, seed + 4), rand(h, seed + 5)
        h1, c1, _ = blas.lstm_cell(w_ih, w_hh, bias, x, h0, c0)
        gold_h, gold_c = lstm_cell_reference(
            w_ih, w_hh, bias, x, h0, c0, num_pchs=2
        )
        assert np.array_equal(h1, gold_h)
        assert np.array_equal(c1, gold_c)


def golden(request, w, num_pchs):
    """The host golden result of one served request."""
    if request.op == "gemv":
        return gemv_reference(w, request.a, num_pchs)
    if request.op == "add":
        return add_reference(request.a, request.b)
    if request.op == "mul":
        return mul_reference(request.a, request.b)
    if request.op == "relu":
        return relu_reference(request.a)
    return bn_reference(request.a, *request.scalars)


class TestServingDifferential:
    """The same comparison through the serving engine, with the fault
    and overload layers armed: every result handed back is bit-exact,
    and only dropped requests return none."""

    # A pool of verified seeds rather than the full integer range: at
    # realistic flip rates a triple-bit upset in one ECC word aliases to
    # a "corrected" single error (a real SEC-DED property the injector
    # models), which would make fully random rates/seeds flaky.
    @given(seed=st.sampled_from([0, 1, 2, 3, 5, 7, 11, 13]))
    @settings(max_examples=4, deadline=None)
    def test_all_ops_with_faults_and_overload(self, seed):
        config = SystemConfig(
            num_pchs=4,
            num_rows=256,
            simulate_pchs=1,
            server_seed=seed,
            ecc=True,
            scrub_interval=2,
            faults=FaultConfig(
                bit_flip_rate=1e-4,
                check_flip_rate=1e-4,
                failed_channels=(0,),
                seed=seed,
            ),
            queue_depth=4,
            admission="shed",
        )
        rng = np.random.default_rng(seed)
        w = rand((48, 80), seed)
        ops = ("gemv", "add", "mul", "relu", "bn")
        arrivals = np.cumsum(rng.exponential(800.0, size=15))
        system = PimSystem(config)
        handles = []
        with PimServer(system, lanes=2, max_batch=4) as server:
            for i, arrival in enumerate(arrivals):
                op = ops[i % len(ops)]
                kwargs = dict(arrival_ns=float(arrival))
                if op == "gemv":
                    handles.append(
                        server.submit("gemv", weights=w,
                                      a=rand(80, seed + i), **kwargs)
                    )
                elif op in ("add", "mul"):
                    handles.append(
                        server.submit(op, a=rand(160, seed + i),
                                      b=rand(160, seed + 900 + i), **kwargs)
                    )
                elif op == "relu":
                    handles.append(
                        server.submit("relu", a=rand(160, seed + i), **kwargs)
                    )
                else:
                    handles.append(
                        server.submit("bn", a=rand(160, seed + i),
                                      scalars=(1.25, -0.5), **kwargs)
                    )
            profile = server.run()

        served = 0
        for handle in handles:
            if handle.outcome.value in ("completed", "degraded_host"):
                assert handle.result is not None
                assert np.array_equal(
                    handle.result, golden(handle, w, config.num_pchs)
                ), f"request {handle.request_id} ({handle.op}) not bit-exact"
                served += 1
            else:
                assert handle.result is None
        # The session must have actually served work, and conservation
        # holds: every submission has exactly one terminal outcome.
        assert served > 0
        assert profile.num_requests == len(handles)

    def test_dead_lane_fallback_stays_golden(self):
        """Both channels of one lane dead: host fallback results must be
        indistinguishable from device results."""
        config = SystemConfig(
            num_pchs=4,
            num_rows=256,
            simulate_pchs=1,
            faults=FaultConfig(failed_channels=(0, 1), seed=3),
        )
        w = rand((48, 80), 1)
        system = PimSystem(config)
        handles = []
        with PimServer(system, lanes=2, max_batch=4, max_retries=1) as server:
            for i in range(12):
                if i % 2 == 0:
                    handles.append(
                        server.submit("gemv", weights=w, a=rand(80, 10 + i))
                    )
                else:
                    handles.append(
                        server.submit("mul", a=rand(160, 10 + i),
                                      b=rand(160, 40 + i))
                    )
            profile = server.run()
        assert profile.fallbacks > 0
        for handle in handles:
            assert np.array_equal(
                handle.result, golden(handle, w, config.num_pchs)
            )
