"""Cross-checks between the analytic performance model and the simulator.

The analytic `perf.latency` model is what scales results to the paper's
64-channel system; these tests pin it to the functional simulator on
matching small configurations so the scaling rests on validated structure.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.perf.latency import PIM_HBM, LatencyModel
from repro.stack.kernels import ElementwiseKernel, GemvKernel
from repro.stack.lstm import LstmLayerOperator
from repro.stack.runtime import PimSystem


def _analytic(num_pchs):
    return LatencyModel(replace(PIM_HBM, num_pchs=num_pchs, tck_ns=1.0))


def rand(shape, seed, scale=0.1):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * scale).astype(np.float16)


class TestGemvAgreement:
    @pytest.mark.parametrize("m,n", [(128, 64), (256, 128), (384, 96)])
    def test_cycles_within_band(self, m, n):
        system = PimSystem(num_pchs=2, num_rows=256, fence_penalty_cycles=22)
        kernel = GemvKernel(system, m, n)
        kernel.load_weights(rand((m, n), 0))
        _, report = kernel(rand(n, 1))
        analytic = _analytic(2).pim_gemv_cycles(m, n)
        assert analytic == pytest.approx(report.cycles, rel=0.30), (m, n)


class TestElementwiseAgreement:
    @pytest.mark.parametrize("elements", [16 * 1024, 64 * 1024])
    def test_add_cycles_within_band(self, elements):
        system = PimSystem(num_pchs=2, num_rows=256, fence_penalty_cycles=22)
        a, b = rand(elements, 2), rand(elements, 3)
        _, report = ElementwiseKernel(system, "add", elements)(a, b)
        analytic = _analytic(2).pim_elementwise_cycles(elements, 24, 3)
        assert analytic == pytest.approx(report.cycles, rel=0.30)

    def test_bn_cheaper_than_add_in_both(self):
        elements = 32 * 1024
        system = PimSystem(num_pchs=2, num_rows=256, fence_penalty_cycles=22)
        a, b = rand(elements, 4), rand(elements, 5)
        _, add_rep = ElementwiseKernel(system, "add", elements)(a, b)
        _, bn_rep = ElementwiseKernel(system, "bn", elements)(a, scalars=(1.0, 0.0))
        model = _analytic(2)
        assert bn_rep.cycles < add_rep.cycles
        assert model.pim_elementwise_cycles(elements, 16, 2) < \
            model.pim_elementwise_cycles(elements, 24, 3)


class TestLstmAgreement:
    def test_fused_layer_tracks_two_gemvs_per_step(self):
        system = PimSystem(num_pchs=2, num_rows=256, fence_penalty_cycles=22)
        d, h, steps = 64, 64, 3
        op = LstmLayerOperator(system, d, h)
        op.load_weights(rand((4 * h, d), 6), rand((4 * h, h), 7),
                        rand(4 * h, 8).astype(np.float32))
        _, report, _ = op(rand((steps, d), 9))
        model = _analytic(2)
        analytic = steps * (
            model.pim_gemv_cycles(4 * h, d) + model.pim_gemv_cycles(4 * h, h)
        )
        assert analytic == pytest.approx(report.cycles, rel=0.35)
