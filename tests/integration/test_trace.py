"""Tests for the command tracer — and, through it, stream-level checks of
the drop-in-replacement property (standard commands only, in legal modes)."""

import numpy as np
import pytest

from repro.dram.commands import CommandType
from repro.stack.blas import PimBlas
from repro.stack.runtime import PimSystem
from repro.tools import trace_channel


def rand(shape, seed):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * 0.1).astype(np.float16)


class TestTracer:
    def test_records_commands(self):
        system = PimSystem(num_pchs=1, num_rows=128)
        blas = PimBlas(system)
        with trace_channel(system.device.pch(0)) as trace:
            blas.gemv(rand((128, 64), 0), rand(64, 1))
        assert len(trace.records) > 50
        counts = trace.counts()
        assert counts[CommandType.RD] > 0
        assert counts[CommandType.WR] > 0
        assert counts[CommandType.ACT] > 0

    def test_mode_transition_sequence(self):
        system = PimSystem(num_pchs=1, num_rows=128)
        blas = PimBlas(system)
        with trace_channel(system.device.pch(0)) as trace:
            blas.gemv(rand((128, 64), 2), rand(64, 3))
        modes = trace.mode_transitions()
        assert modes[0] == "single-bank"
        assert "all-bank" in modes
        assert "all-bank-pim" in modes
        assert modes[-1] == "single-bank"

    def test_pim_columns_happen_in_pim_mode(self):
        system = PimSystem(num_pchs=1, num_rows=128)
        blas = PimBlas(system)
        with trace_channel(system.device.pch(0)) as trace:
            blas.add(rand(3000, 4), rand(3000, 5))
        assert trace.columns_in_mode("all-bank-pim") > 0

    def test_detach_restores_channel(self):
        system = PimSystem(num_pchs=1, num_rows=128)
        channel = system.device.pch(0)
        original = channel.issue
        with trace_channel(channel):
            assert channel.issue != original
        # Bound methods compare equal when function and instance match.
        assert channel.issue == original
        assert "issue" not in vars(channel)

    def test_summary_renders(self):
        system = PimSystem(num_pchs=1, num_rows=128)
        blas = PimBlas(system)
        with trace_channel(system.device.pch(0)) as trace:
            blas.relu(rand(2000, 6))
        text = trace.summary()
        assert "commands" in text
        assert "modes" in text
        assert trace.lines()

    def test_filter_by_type(self):
        system = PimSystem(num_pchs=1, num_rows=128)
        blas = PimBlas(system)
        with trace_channel(system.device.pch(0)) as trace:
            blas.gemv(rand((128, 64), 7), rand(64, 8))
        acts = trace.filter(CommandType.ACT)
        assert all(r.cmd_type is CommandType.ACT for r in acts)
        assert len(acts) == trace.counts()[CommandType.ACT]

    def test_trace_works_on_plain_dram(self):
        from repro.dram.bank import BankConfig
        from repro.dram.controller import MemoryController
        from repro.dram.pseudochannel import PseudoChannel
        from repro.dram.timing import HBM2_1GHZ

        channel = PseudoChannel(HBM2_1GHZ, BankConfig(num_rows=16))
        mc = MemoryController(channel)
        with trace_channel(channel) as trace:
            mc.read(0, 0, 0, 0)
            mc.drain()
        assert trace.records[0].mode == "dram"
        assert [r.cmd_type for r in trace.records] == [
            CommandType.ACT, CommandType.RD,
        ]
