"""Determinism regression: identical seeds replay byte-identical runs.

Two serving sessions with identical configuration and seed must produce
identical ``ServingProfile`` counters, identical per-request terminal
outcomes, and an identical trace span tree — the reproducibility
contract the fault/overload layers advertise ("identical seeds replay
byte-identical runs") and the trace-based debugging workflow depends on.
On divergence the assertion message names the first differing span.
"""

import io
from contextlib import redirect_stdout

import numpy as np
import pytest

from repro.faults import FaultConfig
from repro.obs import diff_span_trees
from repro.stack.runtime import PimSystem, SystemConfig
from repro.stack.server import PimServer


def rand(shape, seed, scale=0.25):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * scale).astype(np.float16)


def serve_once(seed):
    """One traced, faulty, overloaded session; returns (system, handles,
    profile)."""
    config = SystemConfig(
        num_pchs=4,
        num_rows=256,
        simulate_pchs=1,
        server_seed=seed,
        trace=True,
        ecc=True,
        scrub_interval=2,
        faults=FaultConfig(
            bit_flip_rate=1e-4,
            check_flip_rate=1e-4,
            failed_channels=(0,),
            seed=seed,
        ),
        queue_depth=4,
        admission="shed",
    )
    rng = np.random.default_rng(seed)
    w = rand((48, 80), seed)
    arrivals = np.cumsum(rng.exponential(900.0, size=16))
    system = PimSystem(config)
    handles = []
    with PimServer(system, lanes=2, max_batch=4) as server:
        for i, arrival in enumerate(arrivals):
            if i % 2 == 0:
                handles.append(
                    server.submit("gemv", weights=w, a=rand(80, seed + i),
                                  arrival_ns=float(arrival))
                )
            else:
                handles.append(
                    server.submit("add", a=rand(160, seed + i),
                                  b=rand(160, seed + 700 + i),
                                  arrival_ns=float(arrival))
                )
        profile = server.run()
    return system, handles, profile


PROFILE_COUNTERS = (
    "makespan_ns", "makespan_cycles", "batches", "launches", "retries",
    "fallbacks", "scrubs", "scrub_corrected", "scrub_uncorrectable",
    "ecc_corrected", "faults_injected", "rejected", "expired", "degraded",
    "retry_budget_exhausted", "breaker_opens", "breaker_short_circuits",
)


class TestInProcessDeterminism:
    def test_profiles_and_span_trees_identical(self):
        sys_a, handles_a, prof_a = serve_once(seed=9)
        sys_b, handles_b, prof_b = serve_once(seed=9)

        for name in PROFILE_COUNTERS:
            assert getattr(prof_a, name) == getattr(prof_b, name), name
        assert prof_a.outcomes() == prof_b.outcomes()
        assert prof_a.breaker_transitions == prof_b.breaker_transitions
        assert prof_a.channel_busy_cycles == prof_b.channel_busy_cycles
        assert [h.outcome for h in handles_a] == [
            h.outcome for h in handles_b
        ]
        for a, b in zip(handles_a, handles_b):
            if a.result is None:
                assert b.result is None
            else:
                assert np.array_equal(a.result, b.result)

        # The whole span tree, structurally; on failure the message is
        # the first diverging span.
        diverged = diff_span_trees(sys_a.tracer, sys_b.tracer)
        assert diverged is None, f"first diverging span: {diverged}"
        # Events too (retries, breaker flips, scrubs fire identically).
        assert [
            (e.name, e.at_ns, e.lane, e.channel) for e in sys_a.tracer.events
        ] == [
            (e.name, e.at_ns, e.lane, e.channel) for e in sys_b.tracer.events
        ]
        assert sys_a.metrics.render() == sys_b.metrics.render()

    def test_different_seeds_diverge(self):
        """The determinism check has teeth: a different seed produces a
        visibly different session (otherwise the test proves nothing)."""
        sys_a, _, _ = serve_once(seed=9)
        sys_b, _, _ = serve_once(seed=10)
        assert diff_span_trees(sys_a.tracer, sys_b.tracer) is not None


class TestCliDeterminism:
    def _run(self, *args):
        from repro.__main__ import main

        out = io.StringIO()
        with redirect_stdout(out):
            rc = main(list(args))
        return rc, out.getvalue()

    def test_serve_bench_replays_byte_identical(self):
        rc_a, out_a = self._run("serve-bench", "--seed", "5")
        rc_b, out_b = self._run("serve-bench", "--seed", "5")
        assert rc_a == rc_b == 0
        assert out_a == out_b

    def test_trace_replays_byte_identical(self, tmp_path):
        import json

        path_a, path_b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        rc_a, out_a = self._run(
            "trace", "--out", path_a, "--seed", "11", "--requests", "16"
        )
        rc_b, out_b = self._run(
            "trace", "--out", path_b, "--seed", "11", "--requests", "16"
        )
        assert rc_a == rc_b == 0
        # Identical modulo the output path echoed in the first line.
        assert out_a.replace(path_a, "OUT") == out_b.replace(path_b, "OUT")
        with open(tmp_path / "a.json") as fh_a, open(tmp_path / "b.json") as fh_b:
            assert json.load(fh_a) == json.load(fh_b)
