"""Channel-independence / multi-tenancy (Section VIII).

"PIM-HBM can support virtualization and multi-tenancy at some degrees
since it allows a processor to independently control PIM operations of
each memory channel."  These tests run *different* workloads on different
pseudo-channels of one device concurrently — different microkernels,
different modes — and check complete isolation.
"""

import numpy as np
import pytest

from repro.dram.commands import Command, CommandType
from repro.pim.assembler import assemble_words
from repro.pim.modes import PimMode
from repro.stack.runtime import PimSystem


def rand(shape, seed, scale=0.2):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * scale).astype(np.float16)


class TestChannelIndependence:
    def test_different_microkernels_per_channel(self):
        """Channel 0 runs an ADD microkernel while channel 1 runs MUL —
        each tenant programs its own CRF through its own controller."""
        system = PimSystem(num_pchs=2, num_rows=128)
        mm = system.device.memory_map

        programs = {
            0: "FILL GRF_A[A], EVEN_BANK\nJUMP -1, 7\nADD GRF_B[A], GRF_A[A], ODD_BANK\nJUMP -1, 7\nMOV EVEN_BANK[A], GRF_B[A]\nJUMP -1, 7\nEXIT",
            1: "FILL GRF_A[A], EVEN_BANK\nJUMP -1, 7\nMUL GRF_B[A], GRF_A[A], ODD_BANK\nJUMP -1, 7\nMOV EVEN_BANK[A], GRF_B[A]\nJUMP -1, 7\nEXIT",
        }
        a = {p: rand(8 * 16, 10 + p) for p in range(2)}
        b = {p: rand(8 * 16, 20 + p) for p in range(2)}

        for p in range(2):
            channel = system.device.pch(p)
            blocks_a = a[p].reshape(8, 16)
            blocks_b = b[p].reshape(8, 16)
            for col in range(8):
                channel.banks[0].poke(0, col, blocks_a[col].view(np.uint8))
                channel.banks[1].poke(0, col, blocks_b[col].view(np.uint8))

        # Interleave the two tenants' setup and execution phase by phase.
        for p in range(2):
            mc = system.controller(p)
            mc.precharge_all()
            mc.closed_page_access(0, 0, mm.abmr_row)
        for p in range(2):
            mc = system.controller(p)
            image = np.array(assemble_words(programs[p]), dtype="<u4").view(np.uint8)
            for col in range(4):
                mc.write(0, 0, mm.crf_row, col, image[col * 32:(col + 1) * 32])
            on = np.zeros(32, dtype=np.uint8)
            on[0] = 1
            mc.fence()
            mc.write(0, 0, mm.conf_row, 0, on)
            mc.fence()
        for p in range(2):
            mc = system.controller(p)
            for col in range(8):
                mc.read(0, 0, 0, col)
            mc.fence()
            for col in range(8):
                mc.read(0, 0, 0, col)
            mc.fence()
            for col in range(8):
                mc.write(0, 0, 0, 16 + col, np.zeros(32, dtype=np.uint8))
            mc.fence()
            mc.drain()
        for p in range(2):
            mc = system.controller(p)
            mc.write(0, 0, mm.conf_row, 0, np.zeros(32, dtype=np.uint8))
            mc.drain()
            mc.precharge_all()
            mc.closed_page_access(0, 0, mm.sbmr_row)

        # Tenant 0 computed a+b; tenant 1 computed a*b.
        for p, op in ((0, np.add), (1, np.multiply)):
            channel = system.device.pch(p)
            expected = op(
                a[p].reshape(8, 16), b[p].reshape(8, 16)
            ).astype(np.float16)
            for col in range(8):
                got = channel.banks[0].peek(0, 16 + col).view(np.float16)
                assert np.array_equal(got, expected[col]), (p, col)

    def test_one_channel_in_pim_mode_other_in_sb(self):
        """A tenant doing ordinary DRAM traffic is unaffected by a
        neighbouring channel in AB-PIM mode."""
        system = PimSystem(num_pchs=2, num_rows=128)
        mm = system.device.memory_map

        # Channel 0 enters AB mode.
        mc0 = system.controller(0)
        mc0.precharge_all()
        mc0.closed_page_access(0, 0, mm.abmr_row)
        assert system.device.pch(0).mode is PimMode.AB
        assert system.device.pch(1).mode is PimMode.SB

        # Channel 1 does plain reads/writes meanwhile.
        mc1 = system.controller(1)
        data = np.arange(32, dtype=np.uint8)
        mc1.write(1, 2, 9, 4, data, tag="w")
        mc1.read(1, 2, 9, 4, tag="r")
        result = mc1.drain()
        assert np.array_equal(result.read_data["r"], data)
        # And channel 1's banks never saw broadcast behaviour.
        assert system.device.pch(1).ab_broadcast_columns == 0

    def test_blas_calls_isolate_by_construction(self):
        """Two tenants' operators share a device but never touch each
        other's rows (driver-allocated disjoint row sets)."""
        system = PimSystem(num_pchs=2, num_rows=256)
        wa, xa = rand((128, 64), 1), rand(64, 2)
        wb, xb = rand((128, 64), 3), rand(64, 4)
        op_a = system.executor.gemv_operator(wa)
        op_b = system.executor.gemv_operator(wb)
        assert op_a.plan.out_base_row < op_b.plan.weight_base_row
        ya1, _ = op_a(xa)
        yb, _ = op_b(xb)
        ya2, _ = op_a(xa)
        assert np.array_equal(ya1, ya2)  # tenant B did not disturb tenant A
