"""Smoke tests for the python -m repro entry point."""

import subprocess
import sys

import pytest


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=300,
    )


class TestCli:
    def test_demo(self):
        result = run_cli("demo")
        assert result.returncode == 0
        assert "DRAM cycles" in result.stdout

    def test_specs(self):
        result = run_cli("specs")
        assert result.returncode == 0
        assert "9.6 GFLOPs" in result.stdout

    def test_trace(self):
        result = run_cli("trace")
        assert result.returncode == 0
        assert "all-bank-pim" in result.stdout

    def test_report(self):
        result = run_cli("report")
        assert result.returncode == 0
        assert "Table I" in result.stdout
        assert "Fig. 14" in result.stdout

    def test_unknown_command(self):
        result = run_cli("frobnicate")
        assert result.returncode == 1
