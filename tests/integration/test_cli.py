"""Smoke tests for the python -m repro entry point."""

import subprocess
import sys

import pytest


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=300,
    )


class TestCli:
    def test_demo(self):
        result = run_cli("demo")
        assert result.returncode == 0
        assert "DRAM cycles" in result.stdout

    def test_specs(self):
        result = run_cli("specs")
        assert result.returncode == 0
        assert "9.6 GFLOPs" in result.stdout

    def test_trace(self):
        result = run_cli("trace")
        assert result.returncode == 0
        assert "all-bank-pim" in result.stdout

    def test_report(self):
        result = run_cli("report")
        assert result.returncode == 0
        assert "Table I" in result.stdout
        assert "Fig. 14" in result.stdout

    def test_unknown_command(self):
        result = run_cli("frobnicate")
        assert result.returncode == 1


class TestTraceCli:
    """The observability entry points: ``trace --out`` and
    ``serve-bench --trace``."""

    def test_trace_emits_valid_reconciled_chrome_trace(self, tmp_path):
        import json

        out = tmp_path / "trace.json"
        spans = tmp_path / "spans.jsonl"
        metrics = tmp_path / "metrics.txt"
        result = run_cli(
            "trace", "--out", str(out), "--spans", str(spans),
            "--metrics", str(metrics), "--validate", "--requests", "16",
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "drift" in result.stdout
        assert "[ok] trace validates" in result.stdout
        assert "span timeline" in result.stdout
        obj = json.loads(out.read_text())
        assert any(e.get("ph") == "X" for e in obj["traceEvents"])
        assert len(spans.read_text().splitlines()) > 0
        assert "counter   serving.batches" in metrics.read_text()

    def test_serve_bench_trace_flag(self, tmp_path):
        import json

        out = tmp_path / "sb.json"
        result = run_cli("serve-bench", "--trace", str(out))
        assert result.returncode == 0, result.stdout + result.stderr
        assert f"to {out}" in result.stdout
        obj = json.loads(out.read_text())
        assert any(
            e.get("cat") == "request" for e in obj["traceEvents"]
        )
