"""Smoke tests for the python -m repro entry point."""

import subprocess
import sys

import pytest


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=300,
    )


class TestCli:
    def test_demo(self):
        result = run_cli("demo")
        assert result.returncode == 0
        assert "DRAM cycles" in result.stdout

    def test_specs(self):
        result = run_cli("specs")
        assert result.returncode == 0
        assert "9.6 GFLOPs" in result.stdout

    def test_trace(self):
        result = run_cli("trace")
        assert result.returncode == 0
        assert "all-bank-pim" in result.stdout

    def test_report(self):
        result = run_cli("report")
        assert result.returncode == 0
        assert "Table I" in result.stdout
        assert "Fig. 14" in result.stdout

    def test_unknown_command(self):
        result = run_cli("frobnicate")
        assert result.returncode == 1


class TestReplayCli:
    """The durability entry points, driven in-process: ``replay
    --selftest/--trace/--journal`` and ``serve-bench --replay``."""

    def _run(self, *args):
        import io
        from contextlib import redirect_stdout

        from repro.__main__ import main

        out = io.StringIO()
        with redirect_stdout(out):
            rc = main(list(args))
        return rc, out.getvalue()

    def test_replay_selftest(self):
        rc, out = self._run("replay", "--selftest")
        assert rc == 0, out
        assert "[ok] emit/parse/execute round-trip" in out

    def test_replay_without_mode_prints_help(self, capsys):
        from repro.__main__ import main

        assert main(["replay"]) == 1

    def test_replay_trace_file_round_trips(self, tmp_path):
        from repro.tools.pimulator import sample_trace

        trace = tmp_path / "sample.trace"
        trace.write_text(sample_trace())
        emitted = tmp_path / "canonical.trace"
        rc, out = self._run(
            "replay", "--trace", str(trace), "--emit", str(emitted)
        )
        assert rc == 0, out
        assert "state digest" in out
        assert "[ok] emit/parse/execute round-trip" in out
        # The canonical emission is itself a valid, equivalent trace.
        rc2, out2 = self._run("replay", "--trace", str(emitted))
        assert rc2 == 0, out2

    def test_replay_trace_rejects_malformed_file(self, tmp_path):
        trace = tmp_path / "bad.trace"
        trace.write_text("SB X 5\n")
        rc, out = self._run("replay", "--trace", str(trace))
        assert rc == 1
        assert "replay failed" in out

    def test_replay_journal_recovers_and_exports(self, tmp_path):
        import numpy as np

        from repro.stack import (
            PimServer, PimSystem, Request, ServerConfig, SystemConfig,
        )

        rng = np.random.default_rng(3)
        config = SystemConfig(num_pchs=2, num_rows=128, simulate_pchs=1)
        server_config = ServerConfig(
            lanes=1, max_batch=4, journal_dir=str(tmp_path)
        )
        with PimServer(PimSystem(config), server_config) as server:
            for i in range(4):
                server.submit(Request(
                    "add",
                    a=(rng.standard_normal(32) * 0.25).astype(np.float16),
                    b=(rng.standard_normal(32) * 0.25).astype(np.float16),
                    arrival_ns=float(i * 1000), trace_id=f"cli-{i}",
                ))
            server.run()
        exported = tmp_path / "exported.trace"
        rc, out = self._run(
            "replay", "--journal", str(tmp_path),
            "--export-trace", str(exported),
        )
        assert rc == 0, out
        assert "every journaled request has exactly one terminal" in out
        # The exported trace-ISA stream executes and round-trips.
        rc2, out2 = self._run("replay", "--trace", str(exported))
        assert rc2 == 0, out2

    def test_replay_journal_corrupt_mid_stream_fails(self, tmp_path):
        from repro.journal.wal import JournalWriter, segment_path

        with JournalWriter(str(tmp_path)) as writer:
            writer.append({"kind": "meta"})
            writer.append({"kind": "meta"})
        # Flip a byte in the FIRST frame: mid-stream damage, not a torn
        # tail, so recovery must refuse rather than guess.
        segment = segment_path(str(tmp_path), 1)
        with open(segment, "rb") as handle:
            data = bytearray(handle.read())
        data[10] ^= 0xFF
        with open(segment, "wb") as handle:
            handle.write(bytes(data))
        rc, out = self._run("replay", "--journal", str(tmp_path))
        assert rc == 1
        assert "recovery failed" in out

    def test_serve_bench_replay_smoke(self):
        rc, out = self._run("serve-bench", "--replay", "--seed", "5")
        assert rc == 0, out
        assert "[ok] replayed profile identical" in out
        assert "[ok] replayed results bit-exact" in out


class TestTraceCli:
    """The observability entry points: ``trace --out`` and
    ``serve-bench --trace``."""

    def test_trace_emits_valid_reconciled_chrome_trace(self, tmp_path):
        import json

        out = tmp_path / "trace.json"
        spans = tmp_path / "spans.jsonl"
        metrics = tmp_path / "metrics.txt"
        result = run_cli(
            "trace", "--out", str(out), "--spans", str(spans),
            "--metrics", str(metrics), "--validate", "--requests", "16",
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "drift" in result.stdout
        assert "[ok] trace validates" in result.stdout
        assert "span timeline" in result.stdout
        obj = json.loads(out.read_text())
        assert any(e.get("ph") == "X" for e in obj["traceEvents"])
        assert len(spans.read_text().splitlines()) > 0
        assert "counter   serving.batches" in metrics.read_text()

    def test_serve_bench_trace_flag(self, tmp_path):
        import json

        out = tmp_path / "sb.json"
        result = run_cli("serve-bench", "--trace", str(out))
        assert result.returncode == 0, result.stdout + result.stderr
        assert f"to {out}" in result.stdout
        obj = json.loads(out.read_text())
        assert any(
            e.get("cat") == "request" for e in obj["traceEvents"]
        )
