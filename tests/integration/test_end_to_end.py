"""End-to-end integration tests across the full stack.

Everything here goes through the public API and the complete path:
graph framework -> runtime -> BLAS -> kernels -> memory controller ->
PIM device -> execution units, with standard DRAM commands as the only
host/device interface.
"""

import numpy as np
import pytest

from repro import GraphBuilder as G
from repro import GraphExecutor, PimBlas, PimSystem
from repro.dram.commands import CommandType
from repro.pim.modes import PimMode


def rand(shape, seed, scale=0.1):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * scale).astype(np.float16)


class TestMlpInference:
    def test_two_layer_mlp_host_vs_pim(self):
        system = PimSystem(num_pchs=2, num_rows=256)
        w1, w2 = rand((256, 96), 0), rand((64, 256), 1)
        x = G.placeholder("x")
        logits = G.matvec(w2, G.relu(G.matvec(w1, x)))
        feed = {"x": rand(96, 2)}
        (host_y,), _ = GraphExecutor([logits]).run(feed)
        (pim_y,), report = GraphExecutor(
            [logits], backend="pim", system=system, min_elements=64
        ).run(feed)
        # Both matvecs offload; the 256-element ReLU also clears the
        # min_elements=64 threshold.
        assert len(report.offloaded_nodes) == 3
        assert np.abs(host_y - pim_y.astype(np.float32)).max() < 3e-3

    def test_residual_block(self):
        system = PimSystem(num_pchs=2, num_rows=256)
        x, skip = G.placeholder("x"), G.placeholder("skip")
        out = G.relu(G.add(G.batch_norm(x, 1.1, 0.1), skip))
        feed = {"x": rand(4096, 3), "skip": rand(4096, 4)}
        (host_y,), _ = GraphExecutor([out]).run(feed)
        (pim_y,), report = GraphExecutor(
            [out], backend="pim", system=system, simulate_pchs=1
        ).run(feed)
        assert report.pim_launches == 3  # bn, add, relu all offloaded
        assert np.array_equal(np.asarray(host_y), np.asarray(pim_y))


class TestLstmSequence:
    def test_short_speech_like_sequence(self):
        system = PimSystem(num_pchs=2, num_rows=256)
        T, D, H = 4, 40, 64
        w_ih, w_hh = rand((4 * H, D), 5), rand((4 * H, H), 6)
        bias = rand(4 * H, 7).astype(np.float32)
        xs = G.placeholder("xs")
        out = G.lstm(xs, w_ih, w_hh, bias)
        feed = {"xs": rand((T, D), 8)}
        (host_h,), _ = GraphExecutor([out]).run(feed)
        (pim_h,), report = GraphExecutor(
            [out], backend="pim", system=system, min_elements=64, simulate_pchs=1
        ).run(feed)
        assert report.pim_launches == 2 * T
        drift = np.abs(host_h.astype(np.float32) - pim_h.astype(np.float32)).max()
        assert drift < 1e-2


class TestDeviceStateDiscipline:
    def test_system_returns_to_sb_mode(self):
        system = PimSystem(num_pchs=2, num_rows=128)
        blas = PimBlas(system)
        blas.gemv(rand((128, 64), 9), rand(64, 10))
        for i in range(system.num_pchs):
            assert system.device.pch(i).mode is PimMode.SB

    def test_interleaved_kernels_share_device(self):
        system = PimSystem(num_pchs=2, num_rows=256)
        blas = PimBlas(system)
        w = rand((128, 64), 11)
        gemv_y1, _ = blas.gemv(w, rand(64, 12))
        a, b = rand(3000, 13), rand(3000, 14)
        add_out, _ = blas.add(a, b)
        gemv_y2, _ = blas.gemv(w, rand(64, 12))
        assert np.array_equal(gemv_y1, gemv_y2)
        assert np.array_equal(add_out, (a + b).astype(np.float16))

    def test_only_standard_commands_cross_the_interface(self):
        """The drop-in-replacement property: every host/device interaction
        is a JEDEC command type."""
        system = PimSystem(num_pchs=1, num_rows=128)
        blas = PimBlas(system)
        blas.gemv(rand((128, 64), 15), rand(64, 16))
        counts = system.device.pch(0).cmd_counts
        assert sum(counts.values()) > 0
        assert set(counts) == set(CommandType)

    def test_mode_transition_count(self):
        system = PimSystem(num_pchs=1, num_rows=128)
        blas = PimBlas(system)
        blas.gemv(rand((128, 64), 17), rand(64, 18))
        # SB -> AB, per-tile AB<->AB-PIM toggles, AB -> SB.
        assert system.device.pch(0).mode_ctrl.transition_count >= 4


class TestScalability:
    def test_four_channel_system(self):
        system = PimSystem(num_pchs=4, num_rows=128)
        blas = PimBlas(system)
        w, x = rand((256, 160), 19), rand(160, 20)
        y, report = blas.gemv(w, x)
        gold = w.astype(np.float32) @ x.astype(np.float32)
        assert np.abs(y - gold).max() < 2e-3
        assert report.total_pchs == 4

    def test_uneven_dimensions(self):
        system = PimSystem(num_pchs=3, num_rows=128)
        blas = PimBlas(system)
        w, x = rand((130, 50), 21), rand(50, 22)
        y, _ = blas.gemv(w, x)
        gold = w.astype(np.float32) @ x.astype(np.float32)
        assert np.abs(y - gold).max() < 2e-3

    def test_wide_vector_spans_rows(self):
        system = PimSystem(num_pchs=1, num_rows=128)
        blas = PimBlas(system)
        a, b = rand(50000, 23), rand(50000, 24)
        out, report = blas.add(a, b)
        assert np.array_equal(out, (a + b).astype(np.float16))
        assert report.column_commands > 100
