"""WAL framing: append/scan round trips, rotation, and the torn-tail rule.

The hypothesis property is the satellite acceptance check: append N
records, crash at *any* byte offset (emulated by truncating the final
segment), and recovery loses only the record the crash tore — every
frame wholly below the cut comes back intact and in order.
"""

import os
import pickle
import shutil
import struct
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PimJournalError
from repro.journal.wal import (
    DEFAULT_SEGMENT_BYTES,
    JournalWriter,
    iter_records,
    list_segments,
    read_records,
    request_digest,
    segment_path,
)


def _records(n):
    return [{"kind": "accepted", "rid": i, "blob": bytes([i]) * (i + 1)}
            for i in range(n)]


def _write(journal_dir, records, **kwargs):
    with JournalWriter(str(journal_dir), **kwargs) as writer:
        for record in records:
            writer.append(record)


class TestRoundTrip:
    def test_append_then_read_preserves_records_in_order(self, tmp_path):
        records = _records(5)
        _write(tmp_path, records)
        assert read_records(str(tmp_path)) == records

    def test_reopen_continues_the_last_segment(self, tmp_path):
        _write(tmp_path, _records(3))
        _write(tmp_path, [{"kind": "outcome", "rid": 9}])
        assert len(list_segments(str(tmp_path))) == 1
        scanned = read_records(str(tmp_path))
        assert len(scanned) == 4
        assert scanned[-1] == {"kind": "outcome", "rid": 9}

    def test_rotation_splits_segments_and_scan_spans_them(self, tmp_path):
        records = _records(20)
        _write(tmp_path, records, segment_bytes=256)
        segments = list_segments(str(tmp_path))
        assert len(segments) > 1
        assert segments == sorted(segments)
        assert read_records(str(tmp_path)) == records

    def test_sync_mode_round_trips(self, tmp_path):
        _write(tmp_path, _records(2), sync=True)
        assert read_records(str(tmp_path)) == _records(2)

    def test_missing_directory_scans_empty(self, tmp_path):
        assert read_records(str(tmp_path / "nope")) == []
        assert list_segments(str(tmp_path / "nope")) == []

    def test_request_digest_is_content_addressed(self):
        a = {"op": "gemv", "x": 1}
        assert request_digest(a) == request_digest({"op": "gemv", "x": 1})
        assert request_digest(a) != request_digest({"op": "gemv", "x": 2})

    def test_unwritable_directory_raises_journal_error(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        with pytest.raises(PimJournalError):
            JournalWriter(str(blocker / "journal"))


class TestTornTail:
    def test_truncated_final_record_is_dropped_silently(self, tmp_path):
        records = _records(4)
        _write(tmp_path, records)
        path = segment_path(str(tmp_path), 1)
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 3)
        assert read_records(str(tmp_path)) == records[:3]

    def test_corrupt_byte_at_exact_tail_is_dropped(self, tmp_path):
        records = _records(3)
        _write(tmp_path, records)
        path = segment_path(str(tmp_path), 1)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size - 1)
            byte = handle.read(1)
            handle.seek(size - 1)
            handle.write(bytes([byte[0] ^ 0xFF]))
        assert read_records(str(tmp_path)) == records[:2]

    def test_corruption_before_the_tail_raises(self, tmp_path):
        records = _records(3)
        _write(tmp_path, records)
        path = segment_path(str(tmp_path), 1)
        frame0 = 8 + len(pickle.dumps(records[0], pickle.HIGHEST_PROTOCOL))
        with open(path, "r+b") as handle:
            handle.seek(frame0 + 10)  # inside record 1's frame, not the tail
            byte = handle.read(1)
            handle.seek(frame0 + 10)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(PimJournalError):
            read_records(str(tmp_path))

    def test_damage_in_a_non_final_segment_raises(self, tmp_path):
        _write(tmp_path, _records(20), segment_bytes=256)
        first = list_segments(str(tmp_path))[0]
        with open(first, "r+b") as handle:
            handle.truncate(os.path.getsize(first) - 1)
        with pytest.raises(PimJournalError):
            read_records(str(tmp_path))


@given(
    count=st.integers(min_value=1, max_value=8),
    cut_seed=st.integers(min_value=0, max_value=1_000_000),
)
@settings(max_examples=25, deadline=None)
def test_crash_at_any_byte_offset_loses_only_the_torn_record(count, cut_seed):
    """Property (satellite): truncating the WAL at *any* byte offset
    recovers exactly the records whose frames lie wholly below the cut —
    a torn tail never loses an earlier record and never fabricates one."""
    journal_dir = tempfile.mkdtemp(prefix="repro-wal-prop-")
    try:
        records = _records(count)
        _write(journal_dir, records)
        path = segment_path(journal_dir, 1)
        size = os.path.getsize(path)
        cut = cut_seed % (size + 1)
        with open(path, "r+b") as handle:
            handle.truncate(cut)
        # Frame layout: [u32 length][u32 crc32][payload] per record.
        intact = 0
        offset = 0
        for record in records:
            offset += 8 + len(pickle.dumps(record, pickle.HIGHEST_PROTOCOL))
            if offset <= cut:
                intact += 1
        assert read_records(journal_dir) == records[:intact]
    finally:
        shutil.rmtree(journal_dir, ignore_errors=True)


def test_iter_records_matches_read_records(tmp_path):
    records = _records(6)
    _write(tmp_path, records, segment_bytes=128)
    assert list(iter_records(str(tmp_path))) == read_records(str(tmp_path))
