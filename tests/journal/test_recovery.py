"""Crash-consistent recovery: restore, replay, dedupe, and tagging.

Journals are produced the way production produces them — a journaling
:class:`~repro.stack.server.PimServer` session — then recovered with
:func:`repro.journal.recover`.  A "crash" is a session that accepted
requests but never ran (the server closed with the WAL holding accepted
records and no outcomes), which is exactly the state a SIGKILLed router
leaves behind.
"""

import numpy as np
import pytest

from repro.chaos.invariants import golden_reference
from repro.errors import PimJournalError
from repro.journal import JournalWriter, read_records, recover
from repro.stack import (
    PimServer,
    PimSystem,
    Request,
    ServerConfig,
    SystemConfig,
)

WORKERS = 2


def _config(trace=False):
    return SystemConfig(
        num_pchs=2, num_rows=256, simulate_pchs=1, server_seed=5, trace=trace
    )


def _requests(count=4):
    rng = np.random.default_rng(5)
    weights = (rng.standard_normal((16, 8)) * 0.25).astype(np.float16)
    return [
        Request(
            "gemv",
            weights=weights,
            a=(rng.standard_normal(8) * 0.25).astype(np.float16),
            arrival_ns=float(i) * 1000.0,
            trace_id=f"req-{i}",
        )
        for i in range(count)
    ]


def _session(journal_dir, requests, crash, trace=False):
    """One journaling server session; ``crash=True`` closes before run()."""
    config = _config(trace=trace)
    system = PimSystem(config)
    server_config = ServerConfig(
        lanes=2, max_batch=8, journal_dir=str(journal_dir)
    )
    handles = []
    with PimServer(system, server_config) as server:
        for request in requests:
            handles.append(server.submit(request))
        if not crash:
            server.run()
    return handles


class TestRestore:
    def test_completed_session_restores_without_replay(self, tmp_path):
        requests = _requests()
        originals = _session(tmp_path, requests, crash=False)
        report = recover(str(tmp_path), workers=WORKERS)
        assert report.replayed == 0
        assert report.restored == len(requests)
        by_rid = {h.request_id: h for h in report.handles}
        for original in originals:
            restored = by_rid[original.request_id]
            assert restored.outcome == original.outcome.value
            assert np.array_equal(restored.result, original.result)

    def test_restored_entries_are_tagged_and_excluded_from_goodput(
        self, tmp_path
    ):
        _session(tmp_path, _requests(), crash=False)
        report = recover(str(tmp_path), workers=WORKERS)
        assert report.profile.recovered == len(report.handles)
        assert all(stats.recovered for stats in report.profile.requests)
        assert report.profile.goodput_rps() == 0.0
        assert "recovered (journal)" in "\n".join(report.profile.render())


class TestReplay:
    def test_crashed_session_replays_bit_exactly(self, tmp_path):
        requests = _requests()
        _session(tmp_path, requests, crash=True)
        report = recover(str(tmp_path), workers=WORKERS)
        assert report.replayed == len(requests)
        assert report.restored == 0
        config = _config()
        for handle in report.handles:
            assert handle.outcome == "completed"
            golden = golden_reference(handle.request, config.num_pchs)
            assert np.array_equal(handle.result, golden)

    def test_recovery_is_idempotent(self, tmp_path):
        requests = _requests()
        _session(tmp_path, requests, crash=True)
        first = recover(str(tmp_path), workers=WORKERS)
        second = recover(str(tmp_path), workers=WORKERS)
        assert first.replayed == len(requests)
        assert second.replayed == 0
        assert second.restored == len(requests)
        for a, b in zip(first.handles, second.handles):
            assert a.request_id == b.request_id
            assert a.outcome == b.outcome
            assert np.array_equal(a.result, b.result)

    def test_replay_spans_are_tagged_recovered(self, tmp_path):
        _session(tmp_path, _requests(), crash=True, trace=True)
        report = recover(str(tmp_path), workers=WORKERS)
        assert report.tracer is not None
        assert report.tracer.spans
        assert all(
            span.attrs.get("recovered") is True
            for span in report.tracer.spans
        )

    def test_replay_profile_excludes_restored_entries(self, tmp_path):
        requests = _requests()
        _session(tmp_path, requests, crash=True)
        report = recover(str(tmp_path), workers=WORKERS)
        assert len(report.replay_profile.requests) == len(requests)
        assert report.replay_profile.recovered == len(requests)


class TestDedupe:
    def test_duplicate_trace_id_admissions_collapse(self, tmp_path):
        request = _requests(1)[0]
        with JournalWriter(str(tmp_path)) as writer:
            writer.append_meta(_config(), ServerConfig(lanes=2, max_batch=8))
            writer.append_accepted(0, request)
            writer.append_accepted(1, request)  # client resubmitted
            writer.append_outcome(
                1, request.trace_id, "completed", 0,
                np.ones(4, dtype=np.float16),
            )
        report = recover(str(tmp_path), workers=WORKERS)
        assert report.deduped == 1
        assert len(report.handles) == 1
        handle = report.handles[0]
        # First admission is canonical, but the duplicate's journaled
        # outcome still terminates it.
        assert handle.request_id == 0
        assert handle.outcome == "completed"
        assert report.replayed == 0

    def test_requests_without_trace_id_never_dedupe(self, tmp_path):
        request = _requests(1)[0].replace(trace_id=None)
        with JournalWriter(str(tmp_path)) as writer:
            writer.append_meta(_config(), ServerConfig(lanes=2, max_batch=8))
            writer.append_accepted(0, request)
            writer.append_accepted(1, request)
            for rid in (0, 1):
                writer.append_outcome(
                    rid, None, "completed", 0, np.ones(4, dtype=np.float16)
                )
        report = recover(str(tmp_path), workers=WORKERS)
        assert report.deduped == 0
        assert len(report.handles) == 2


class TestScanErrors:
    def test_unknown_record_kind_raises(self, tmp_path):
        with JournalWriter(str(tmp_path)) as writer:
            writer.append({"kind": "bogus"})
        with pytest.raises(PimJournalError):
            recover(str(tmp_path), workers=WORKERS)

    def test_report_renders(self, tmp_path):
        _session(tmp_path, _requests(2), crash=False)
        report = recover(str(tmp_path), workers=WORKERS)
        text = "\n".join(report.render())
        assert "records scanned" in text
        assert "outcome completed" in text
        assert report.trace_rids["req-0"] == 0

    def test_recovery_appends_outcomes_under_original_rids(self, tmp_path):
        requests = _requests(3)
        _session(tmp_path, requests, crash=True)
        recover(str(tmp_path), workers=WORKERS)
        outcomes = [
            r for r in read_records(str(tmp_path)) if r["kind"] == "outcome"
        ]
        assert sorted(r["rid"] for r in outcomes) == [0, 1, 2]
