"""Fault x fused-executor interactions: no stale compiled-trace replay.

The compiled-trace cache is content-keyed (CRF words and sequencer entry
state are *in* the key), so a corrupted program can never silently replay
a stale trace — but faults additionally invalidate a channel's entries
eagerly, keeping the bounded cache free of dead programs.  These tests
drive the public fault paths (:meth:`FaultInjector.corrupt_registers`,
:meth:`FaultInjector.fail_channel`, driver quarantine) and assert both
the bookkeeping (``TraceCacheStats.invalidations``) and the end that
matters: results stay bit-identical to the lock-step oracle under the
same fault sequence, including across a scrub/heal cycle.
"""

import numpy as np

from repro.faults import FaultConfig, FaultInjector
from repro.stack.blas import PimBlas, add_reference
from repro.stack.runtime import PimSystem, SystemConfig


def _fused_system(**overrides):
    return PimSystem(
        SystemConfig(
            num_pchs=2, num_rows=128, ecc=True, exec_mode="fused", **overrides
        )
    )


def _rand(length, seed):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(length) * 0.25).astype(np.float16)


def _warm(system, seed=5):
    """Run one elementwise op to compile traces; returns (a, b, result)."""
    blas = PimBlas(system)
    a, b = _rand(96, seed), _rand(96, seed + 1)
    out, _ = blas.add(a, b)
    return a, b, out


class TestCrfUpsetInvalidation:
    def test_crf_fault_drops_compiled_traces(self):
        system = _fused_system()
        _warm(system)
        cache = system._trace_cache
        assert len(cache) > 0
        injector = FaultInjector(
            system, FaultConfig(register_fault_rate=1.0, seed=2)
        )
        injector.corrupt_registers()
        assert injector.stats.crf_faults > 0  # seed 2 strikes a CRF
        assert cache.stats.invalidations > 0

    def test_no_stale_replay_after_crf_upset(self):
        """After a CRF upset the driver re-broadcasts; the next run must
        compile the fresh program, never replay the corrupted window."""
        system = _fused_system()
        a, b, _ = _warm(system)
        injector = FaultInjector(
            system, FaultConfig(register_fault_rate=1.0, seed=2)
        )
        injector.corrupt_registers()
        assert injector.stats.crf_faults > 0
        out, _ = PimBlas(system).add(a, b)
        assert np.array_equal(out, add_reference(a, b))

    def test_fused_matches_lockstep_under_identical_fault_sequence(self):
        """The differential invariant survives faults: two systems fed the
        same seeded CRF/GRF/SRF upsets produce identical bytes."""

        def run(mode):
            system = PimSystem(
                SystemConfig(
                    num_pchs=2, num_rows=128, ecc=True, exec_mode=mode
                )
            )
            blas = PimBlas(system)
            a, b = _rand(96, 31), _rand(96, 32)
            injector = FaultInjector(
                system, FaultConfig(register_fault_rate=0.5, seed=9)
            )
            outs = []
            for _ in range(3):
                outs.append(blas.add(a, b)[0].tobytes())
                injector.corrupt_registers()
            return outs, injector.stats.register_faults

        base = run("lockstep")
        fused = run("fused")
        assert fused[1] == base[1] > 0  # identical seeded fault sequence
        assert fused[0] == base[0], "fused diverged under register faults"


class TestChannelFailureInvalidation:
    def test_fail_channel_drops_only_that_channels_traces(self):
        system = _fused_system()
        _warm(system)
        cache = system._trace_cache
        assert {key[0] for key in cache.keys()} == {0, 1}
        injector = FaultInjector(system, FaultConfig())
        injector.fail_channel(1)
        assert cache.stats.invalidations > 0
        assert {key[0] for key in cache.keys()} == {0}

    def test_driver_quarantine_invalidates(self):
        system = _fused_system()
        _warm(system)
        cache = system._trace_cache
        before = cache.stats.invalidations
        lease = system.driver.alloc_channels(1)
        system.driver.quarantine_channels(tuple(lease))
        assert cache.stats.invalidations > before
        assert all(key[0] not in tuple(lease) for key in cache.keys())


class TestScrubHealBitExact:
    def test_fused_bit_exact_across_inject_scrub_heal_cycle(self):
        """Single-bit storage errors land on live rows, the scrubber
        repairs them, and the re-run is bit-exact — identically in fused
        and lock-step mode (ECC counters included)."""

        def run(mode):
            system = PimSystem(
                SystemConfig(
                    num_pchs=2, num_rows=128, ecc=True, exec_mode=mode
                )
            )
            blas = PimBlas(system)
            a, b = _rand(96, 21), _rand(96, 22)
            first = blas.add(a, b)[0].tobytes()
            # Strike one data bit per live row on every bank (deterministic
            # locations so both modes see the same damage).
            for pch in range(system.num_pchs):
                for bank in system.device.pch(pch).banks:
                    for row in bank.materialized_rows():
                        bank.inject_error(row, col=0, bit=3)
            result = system.driver.scrub()
            assert result.corrected > 0
            assert not result.uncorrectable
            second = blas.add(a, b)[0].tobytes()
            ecc = [
                vars(bk.ecc_stats).copy()
                for pch in range(system.num_pchs)
                for bk in system.device.pch(pch).banks
            ]
            return first, second, ecc

        base = run("lockstep")
        fused = run("fused")
        assert fused[0] == base[0]
        assert fused[1] == base[1], "fused diverged after scrub/heal"
        assert fused[2] == base[2], "ECC counters diverged"
        assert base[0] == base[1]  # scrub restored the exact bytes
