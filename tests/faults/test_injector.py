"""Tests for the seeded fault injector."""

import numpy as np
import pytest

from repro.errors import PimChannelError
from repro.faults import FaultConfig, FaultInjector
from repro.stack import PimSystem, SystemConfig

CONFIG = SystemConfig(num_pchs=2, num_rows=64, ecc=True)


def make_system():
    return PimSystem(CONFIG)


def seed_rows(system, rows=4, seed=11):
    """Allocate ``rows`` row-sets and poke a random pattern everywhere."""
    block = system.driver.alloc_rows(rows)
    row_ids = [block.row(i) for i in range(block.num_rows)]
    rng = np.random.default_rng(seed)
    for pch in range(system.num_pchs):
        for bank in system.device.pch(pch).banks:
            for row in row_ids:
                bank.poke(row, 0, rng.integers(0, 256, 32, dtype=np.uint8))
    return row_ids


def snapshot(system):
    """All materialised row bytes, concatenated in a fixed walk order."""
    parts = []
    for pch in range(system.num_pchs):
        for bank in system.device.pch(pch).banks:
            for row in bank.materialized_rows():
                parts.append(bank._rows[row].copy())
    return np.concatenate(parts) if parts else np.zeros(0, dtype=np.uint8)


class TestFaultConfig:
    def test_default_is_inactive(self):
        assert not FaultConfig().active

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"bit_flip_rate": 1e-6},
            {"check_flip_rate": 1e-6},
            {"register_fault_rate": 0.1},
            {"failed_channels": (1,)},
        ],
    )
    def test_any_fault_class_activates(self, kwargs):
        assert FaultConfig(**kwargs).active


class TestChannelFailure:
    def test_failed_bank_raises_naming_the_channel(self):
        system = make_system()
        injector = FaultInjector(system, FaultConfig(failed_channels=(1,)))
        assert injector.is_failed(1) and not injector.is_failed(0)
        with pytest.raises(PimChannelError) as err:
            system.device.pch(1).banks[0].peek(0, 0)
        assert err.value.channels == (1,)
        # The healthy channel still serves data.
        system.device.pch(0).banks[0].peek(0, 0)

    def test_out_of_range_channel_rejected(self):
        system = make_system()
        injector = FaultInjector(system, FaultConfig())
        with pytest.raises(PimChannelError):
            injector.fail_channel(99)

    def test_system_config_wires_the_injector(self):
        system = PimSystem(
            CONFIG.replace(faults=FaultConfig(failed_channels=(0,)))
        )
        assert system.fault_injector is not None
        assert system.fault_injector.is_failed(0)

    def test_inactive_config_builds_no_injector(self):
        system = PimSystem(CONFIG.replace(faults=FaultConfig()))
        assert system.fault_injector is None


class TestStorageFaults:
    def test_flips_only_allocated_materialized_rows(self):
        system = make_system()
        block = seed_rows(system, rows=2)
        injector = FaultInjector(
            system, FaultConfig(bit_flip_rate=0.01, seed=3)
        )
        flipped = injector.inject_storage_faults()
        assert flipped > 0
        allocated = set(block)
        for pch in range(system.num_pchs):
            for bank in system.device.pch(pch).banks:
                for row in bank.materialized_rows():
                    if row not in allocated:
                        assert not bank._rows[row].any()

    def test_nothing_flips_without_allocations(self):
        system = make_system()
        injector = FaultInjector(
            system, FaultConfig(bit_flip_rate=0.5, seed=3)
        )
        assert injector.inject_storage_faults() == 0
        assert injector.stats.bit_flips == 0

    def test_scrub_repairs_injected_single_flips(self):
        system = make_system()
        seed_rows(system, rows=2)
        clean = snapshot(system)
        injector = FaultInjector(
            system, FaultConfig(bit_flip_rate=2e-5, seed=5)
        )
        assert injector.inject_storage_faults() > 0
        result = system.driver.scrub()
        assert result.corrected > 0
        assert not result.uncorrectable
        assert np.array_equal(snapshot(system), clean)


class TestDeterminism:
    def test_same_seed_same_pattern(self):
        images = []
        counts = []
        for _ in range(2):
            system = make_system()
            seed_rows(system, rows=3)
            injector = FaultInjector(
                system,
                FaultConfig(
                    bit_flip_rate=1e-3,
                    check_flip_rate=1e-3,
                    register_fault_rate=0.5,
                    seed=42,
                ),
            )
            injector.tick()
            images.append(snapshot(system))
            counts.append(injector.stats.total)
        assert counts[0] == counts[1] > 0
        assert np.array_equal(images[0], images[1])

    def test_different_seeds_diverge(self):
        images = []
        for seed in (1, 2):
            system = make_system()
            seed_rows(system, rows=3)
            FaultInjector(
                system, FaultConfig(bit_flip_rate=1e-3, seed=seed)
            ).inject_storage_faults()
            images.append(snapshot(system))
        assert not np.array_equal(images[0], images[1])


class TestRegisterFaults:
    def test_tick_counts_epochs_and_new_faults(self):
        system = make_system()
        seed_rows(system, rows=1)
        injector = FaultInjector(
            system, FaultConfig(register_fault_rate=1.0, seed=0)
        )
        delta = injector.tick()
        assert delta == injector.stats.register_faults > 0
        assert injector.stats.epochs == 1

    def test_crf_upset_invalidates_broadcast_cache(self):
        system = make_system()
        # Pretend every channel already holds a broadcast microkernel.
        system._crf_loaded = {p: "kernel" for p in range(system.num_pchs)}
        injector = FaultInjector(
            system, FaultConfig(register_fault_rate=1.0, seed=0)
        )
        # With rate 1.0 every unit is struck each epoch; a third of the
        # strikes land in the CRF, so a few epochs guarantee one.
        for _ in range(8):
            injector.tick()
            if injector.stats.crf_faults:
                break
        assert injector.stats.crf_faults > 0
        assert len(system._crf_loaded) < system.num_pchs


class TestTransportCorruption:
    """The latency-tier corruption primitives the chaos harness drives."""

    def test_corrupt_blob_flips_one_bit_and_counts(self):
        injector = FaultInjector(make_system(), FaultConfig(seed=3))
        blob = bytes(range(64))
        corrupted = injector.corrupt_blob(blob)
        assert corrupted != blob
        diff = [i for i, (a, b) in enumerate(zip(blob, corrupted)) if a != b]
        assert len(diff) == 1
        assert bin(blob[diff[0]] ^ corrupted[diff[0]]).count("1") == 1
        assert injector.stats.pipe_corruptions == 1

    def test_corrupt_shm_flips_one_bit_in_place(self):
        injector = FaultInjector(make_system(), FaultConfig(seed=3))
        frame = bytearray(range(64))
        original = bytes(frame)
        injector.corrupt_shm(memoryview(frame))
        diff = [i for i, (a, b) in enumerate(zip(original, frame)) if a != b]
        assert len(diff) == 1
        assert bin(original[diff[0]] ^ frame[diff[0]]).count("1") == 1
        assert injector.stats.shm_corruptions == 1
        assert injector.stats.total >= 1

    def test_corrupt_shm_deterministic_per_seed(self):
        def strike(seed):
            injector = FaultInjector(make_system(), FaultConfig(seed=seed))
            frame = bytearray(64)
            injector.corrupt_shm(memoryview(frame))
            return bytes(frame)

        assert strike(5) == strike(5)
        assert strike(5) != strike(6)

    def test_corrupt_shm_empty_frame_counts_without_striking(self):
        injector = FaultInjector(make_system(), FaultConfig(seed=0))
        injector.corrupt_shm(memoryview(bytearray(0)))
        assert injector.stats.shm_corruptions == 1
