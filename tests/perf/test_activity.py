"""Cross-validation: activity-counted energy vs the analytic Fig. 11 model.

The energy-per-bit advantage must *emerge* from simulator event counts on
live kernels, landing near the analytic model's 3.8x / the paper's 3.5x.
"""

import numpy as np
import pytest

from repro.dram.bank import BankConfig
from repro.dram.device import DeviceConfig, HbmDevice
from repro.host.kernels import HostKernels
from repro.host.processor import HostSystem
from repro.perf.activity import ActivityEnergyModel, ActivityEnergyParams
from repro.perf.energy import DevicePowerModel
from repro.stack.kernels import ElementwiseKernel
from repro.stack.runtime import PimSystem


def _host_channels_with_stream(nbytes):
    system = HostSystem(
        HbmDevice(DeviceConfig(num_pchs=1, bank_config=BankConfig(num_rows=256))),
        fence_penalty_cycles=0,
    )
    HostKernels(system).stream_read(nbytes)
    return system.device.pchs


def _pim_channels_with_add(elements):
    system = PimSystem(num_pchs=1, num_rows=256)
    rng = np.random.default_rng(0)
    a = rng.standard_normal(elements).astype(np.float16)
    b = rng.standard_normal(elements).astype(np.float16)
    ElementwiseKernel(system, "add", elements)(a, b)
    return system.device.pchs


class TestParams:
    def test_derived_from_power_model(self):
        params = ActivityEnergyParams.from_power_model(DevicePowerModel())
        assert params.cell_per_access == pytest.approx(0.08)
        assert params.bus_per_burst == pytest.approx(0.45)

    def test_streaming_read_costs_one_unit(self):
        p = ActivityEnergyParams()
        total = (
            p.cell_per_access + p.iosa_per_access + p.bus_per_burst + p.phy_per_burst
        )
        assert total == pytest.approx(1.0)


class TestHostBreakdown:
    def test_streaming_read_breakdown(self):
        channels = _host_channels_with_stream(64 * 1024)
        model = ActivityEnergyModel()
        breakdown = model.host_breakdown(channels)
        columns = 64 * 1024 // 32
        assert breakdown.bits_processed == columns * 32 * 8
        # Per-column split matches the Fig. 11 fractions.
        assert breakdown.global_bus / columns == pytest.approx(0.45)
        assert breakdown.io_phy / columns == pytest.approx(0.35)

    def test_activation_energy_counted(self):
        channels = _host_channels_with_stream(64 * 1024)
        breakdown = ActivityEnergyModel().host_breakdown(channels)
        assert breakdown.activation > 0


class TestPimBreakdown:
    def test_bus_and_phy_nearly_eliminated(self):
        channels = _pim_channels_with_add(32 * 1024)
        breakdown = ActivityEnergyModel().pim_breakdown(channels)
        # Bank-side energy dominates; bus/PHY shrink to residuals.
        assert breakdown.cell + breakdown.iosa_decoders > breakdown.global_bus
        assert breakdown.global_bus < 0.15 * breakdown.cell / 0.08 * 0.45

    def test_pim_unit_energy_counted(self):
        channels = _pim_channels_with_add(32 * 1024)
        breakdown = ActivityEnergyModel().pim_breakdown(channels)
        assert breakdown.pim_units > 0

    def test_bits_counted_from_bank_accesses(self):
        channels = _pim_channels_with_add(32 * 1024)
        breakdown = ActivityEnergyModel().pim_breakdown(channels)
        assert breakdown.bits_processed > 32 * 1024 * 16  # > one pass


class TestEnergyPerBitAdvantage:
    def test_emerges_from_event_counts(self):
        """The headline Fig. 11 result, re-derived from counted events on
        live kernels: PIM moves bits at ~3-4x lower energy."""
        pim_channels = _pim_channels_with_add(64 * 1024)
        host_channels = _host_channels_with_stream(3 * 128 * 1024)
        advantage = ActivityEnergyModel().energy_per_bit_advantage(
            pim_channels, host_channels
        )
        analytic = DevicePowerModel().energy_per_bit_reduction
        assert 2.5 <= advantage <= 5.0  # paper: 3.5x
        assert advantage == pytest.approx(analytic, rel=0.45)

    def test_requires_pim_activity(self):
        host_channels = _host_channels_with_stream(1024)
        with pytest.raises(ValueError):
            ActivityEnergyModel().energy_per_bit_advantage(
                host_channels, host_channels
            )
