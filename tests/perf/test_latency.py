"""Tests for the latency model: calibration bands and mechanism checks.

The band assertions pin the model to the paper's reported results (within
a reproduction tolerance); the mechanism tests check monotonicity and the
structural behaviours that generate the shapes in Fig. 10.
"""

import pytest

from repro.apps.microbench import ADD_SIZES, GEMV_SIZES
from repro.apps.models import ALEXNET, ALL_APPS, DS2, GNMT, RESNET50, RNNT
from repro.perf.latency import PIM_HBM, PROC_HBM, Calibration, LatencyModel


@pytest.fixture(scope="module")
def host():
    return LatencyModel(PROC_HBM)


@pytest.fixture(scope="module")
def pim():
    return LatencyModel(PIM_HBM)


def speedup(host, pim, app, batch=1):
    return host.app_time(app, batch)["total"] / pim.app_time(app, batch)["total"]


class TestSystemParameters:
    def test_offchip_bandwidth(self):
        # 4 devices x 16 pCH at 2.4 Gb/s = 1.229 TB/s (Section VI).
        assert PROC_HBM.offchip_bw == pytest.approx(1.2288e12, rel=1e-3)

    def test_onchip_bandwidth_4x(self):
        assert PIM_HBM.onchip_bw / PIM_HBM.offchip_bw == pytest.approx(4.0)

    def test_llc_miss_model(self):
        cal = Calibration()
        assert cal.llc_miss_rate(1) == 1.0
        assert 0.70 <= cal.llc_miss_rate(4) <= 0.80  # Fig. 10: 70-80% at B4


class TestMicrobenchmarkBands:
    def test_gemv1_speedup_11x(self, host, pim):
        """Paper: GEMV improves by up to 11.2x at batch 1."""
        ratio = host.host_gemv(1024, 4096).ns / pim.pim_gemv(1024, 4096).ns
        assert 9.5 <= ratio <= 13.0

    def test_gemv_speedups_all_positive(self, host, pim):
        for g in GEMV_SIZES:
            ratio = host.host_gemv(g.m, g.n).ns / pim.pim_gemv(g.m, g.n).ns
            assert ratio > 3.0

    def test_add1_speedup_1p6(self, host, pim):
        """Paper: ADD improves by only 1.6x (fence-limited)."""
        ratio = host.host_stream(ADD_SIZES[0].n, 3).ns / pim.pim_add(ADD_SIZES[0].n).ns
        assert 1.3 <= ratio <= 2.0

    def test_gemv_beats_add(self, host, pim):
        g = host.host_gemv(1024, 4096).ns / pim.pim_gemv(1024, 4096).ns
        a = host.host_stream(2**21, 3).ns / pim.pim_add(2**21).ns
        assert g > 3 * a

    def test_batch2_ratio_3x(self, host, pim):
        ratio = host.host_gemv(1024, 4096, 2).ns / pim.pim_gemv(1024, 4096, 2).ns
        assert 2.3 <= ratio <= 4.0

    def test_batch4_crossover(self, host, pim):
        """Paper: at batch 4 the HBM host outperforms PIM-HBM."""
        ratio = host.host_gemv(1024, 4096, 4).ns / pim.pim_gemv(1024, 4096, 4).ns
        assert ratio < 1.0


class TestApplicationBands:
    def test_ds2_3p5(self, host, pim):
        assert 2.8 <= speedup(host, pim, DS2) <= 4.6  # paper 3.5

    def test_gnmt_1p5(self, host, pim):
        assert 1.2 <= speedup(host, pim, GNMT) <= 2.1  # paper 1.5

    def test_alexnet_1p4(self, host, pim):
        assert 1.1 <= speedup(host, pim, ALEXNET) <= 1.7  # paper 1.4

    def test_resnet_unharmed(self, host, pim):
        """Paper: PIM-HBM gives the same performance as HBM on ResNet-50
        (compute-bound) — crucially it does not hurt."""
        assert 0.95 <= speedup(host, pim, RESNET50) <= 1.15

    def test_rnnt_between_ds2_and_gnmt(self, host, pim):
        r = speedup(host, pim, RNNT)
        assert speedup(host, pim, GNMT) < r < speedup(host, pim, DS2)

    def test_ds2_batch2_1p6(self, host, pim):
        assert 1.3 <= speedup(host, pim, DS2, 2) <= 2.3  # paper 1.6

    def test_rnnt_batch2_1p9(self, host, pim):
        assert 1.4 <= speedup(host, pim, RNNT, 2) <= 2.4  # paper 1.9

    def test_most_apps_lose_at_batch4(self, host, pim):
        losing = sum(
            1 for app in ALL_APPS if speedup(host, pim, app, 4) < 1.2
        )
        assert losing >= 4

    def test_gnmt_encoder_speedup(self, host, pim):
        """Paper: the GNMT LSTM *encoder* improves 6.2x."""
        encoders = [l for l in GNMT.layers if getattr(l, "fused", False)]
        h = sum(host.layer_time(l, 1).ns for l in encoders)
        p = sum(pim.layer_time(l, 1).ns for l in encoders)
        assert 4.0 <= h / p <= 7.5


class TestMechanisms:
    def test_fence_free_pim_is_faster(self, pim):
        nf = pim.without_fences()
        fenced = pim.pim_gemv(1024, 4096).ns
        free = nf.pim_gemv(1024, 4096).ns
        assert 1.2 <= fenced / free <= 3.0

    def test_fence_free_add(self, pim):
        nf = pim.without_fences()
        assert pim.pim_add(2**21).ns > nf.pim_add(2**21).ns

    def test_pim_time_scales_linearly_with_batch(self, pim):
        t1 = pim.pim_gemv_cycles(1024, 4096)
        assert pim.pim_gemv(1024, 4096, batch=3).ns >= 3 * t1 * PIM_HBM.tck_ns

    def test_host_gemv_efficiency_saturates(self):
        cal = Calibration()
        assert cal.gemv_efficiency(1024, 64) == cal.host_gemm_eff_max

    def test_decoder_launch_overhead(self, pim):
        """Non-fused (decoder-style) LSTM pays per-step operator switches."""
        from repro.apps.layers import Lstm

        fused = Lstm("enc", 50, 1024, 1024, fused=True)
        stepped = Lstm("dec", 50, 1024, 1024, fused=False)
        assert pim.lstm_time(stepped, 1).ns > pim.lstm_time(fused, 1).ns

    def test_offload_decision_skips_slow_ops(self, pim):
        """The preprocessor leaves tiny per-step FCs on the host."""
        from repro.apps.layers import Fc

        tiny = Fc("joint", 29, 512, calls=40)
        assert not pim.offloads(tiny)

    def test_offload_decision_takes_lstms(self, pim):
        from repro.apps.layers import Lstm

        layer = Lstm("enc", 100, 1024, 1024, fused=True)
        assert pim.offloads(layer)

    def test_hbm_system_never_offloads(self, host):
        from repro.apps.layers import Lstm

        assert not host.offloads(Lstm("enc", 100, 1024, 1024))

    def test_app_breakdown_sums(self, pim):
        breakdown = pim.app_time(DS2)
        total = breakdown.pop("total")
        assert total == pytest.approx(sum(breakdown.values()))


class TestAnalyticVsSimulator:
    """The analytic PIM cycle counts must track the cycle-level simulator."""

    def test_gemv_cycles_close_to_simulated(self):
        import numpy as np
        from dataclasses import replace
        from repro.stack.kernels import GemvKernel
        from repro.stack.runtime import PimSystem
        from repro.perf.latency import SystemPerf

        m, n, pchs = 256, 128, 2
        system = PimSystem(num_pchs=pchs, num_rows=128, fence_penalty_cycles=22)
        kernel = GemvKernel(system, m, n)
        rng = np.random.default_rng(0)
        kernel.load_weights((rng.standard_normal((m, n)) * 0.1).astype(np.float16))
        _, report = kernel((rng.standard_normal(n) * 0.1).astype(np.float16))

        analytic = LatencyModel(
            replace(PIM_HBM, num_pchs=pchs, tck_ns=1.0)
        ).pim_gemv_cycles(m, n)
        assert analytic == pytest.approx(report.cycles, rel=0.30)
