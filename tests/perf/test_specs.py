"""Tests for Table IV / V derivations."""

import pytest

from repro.perf.specs import PimDeviceSpec, PimUnitSpec


class TestTableIV:
    def test_throughput_9p6_gflops(self):
        # 16 lanes x (mul + add) x 300 MHz.
        assert PimUnitSpec().peak_gflops == pytest.approx(9.6)

    def test_datapath_width(self):
        assert PimUnitSpec().datapath_bits == 256

    def test_register_file_sizes(self):
        spec = PimUnitSpec()
        assert spec.crf_bits == 32 * 32
        assert spec.grf_bits == 16 * 256
        assert spec.srf_bits == 16 * 16

    def test_table_rendering(self):
        table = PimUnitSpec().as_table()
        assert table["# of MUL/ADD FPUs"] == "16/16"
        assert "9.6 GFLOPs" in table["Throughput"]
        assert "0.712" in table["Area"]


class TestTableV:
    def test_onchip_bandwidth(self):
        # Table V: 1.229 TB/s (1.2 Gb/s x 64 b x 8 banks x 16 pCH).
        assert PimDeviceSpec().onchip_bandwidth_tbps == pytest.approx(1.2288, rel=1e-3)

    def test_onchip_bandwidth_min(self):
        assert PimDeviceSpec().onchip_bandwidth_tbps_min == pytest.approx(1.024, rel=1e-3)

    def test_io_bandwidth(self):
        # 2.4 Gb/s x 64 b x 1 bank x 16 pCH = 307.2 GB/s.
        assert PimDeviceSpec().io_bandwidth_gbps == pytest.approx(307.2)

    def test_bandwidth_ratio_is_4x(self):
        spec = PimDeviceSpec()
        ratio = spec.onchip_bandwidth_tbps * 1000 / spec.io_bandwidth_gbps
        assert ratio == pytest.approx(4.0)

    def test_capacity_6gb(self):
        # 4 x 4 Gb PIM dies + 4 x 8 Gb HBM dies = 6 GB.
        assert PimDeviceSpec().capacity_gbyte == 6.0

    def test_32_units_per_die(self):
        assert PimDeviceSpec().pim_units_per_die == 32

    def test_table_rendering(self):
        table = PimDeviceSpec().as_table()
        assert table["# of pCHs"] == "16"
        assert table["# of banks per pCH"] == "16"
        assert table["# of PIM exe. units per pCH"] == "8"
