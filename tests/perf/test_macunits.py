"""Tests for the Table I MAC-unit model."""

import pytest

from repro.perf.macunits import PAPER_TABLE1, TABLE1_SPECS, MacUnitModel, MacUnitSpec


@pytest.fixture(scope="module")
def model():
    return MacUnitModel()


class TestFitQuality:
    def test_area_matches_paper_closely(self, model):
        table = model.normalised_table()
        for name, row in table.items():
            paper = PAPER_TABLE1[name]["area"]
            assert row["area"] == pytest.approx(paper, rel=0.05), name

    def test_energy_within_band(self, model):
        table = model.normalised_table()
        for name, row in table.items():
            paper = PAPER_TABLE1[name]["energy"]
            assert row["energy"] == pytest.approx(paper, rel=0.20), name


class TestOrderings:
    """The orderings that drive the paper's FP16 choice must hold."""

    def _by_name(self, model):
        return {s.name: s for s in TABLE1_SPECS}

    def test_fp32_area_prohibitive(self, model):
        specs = self._by_name(model)
        assert model.area(specs["FP32"]) > 2.5 * model.area(specs["FP16"])

    def test_bf16_smaller_than_fp16(self, model):
        specs = self._by_name(model)
        assert model.area(specs["BFLOAT16"]) < model.area(specs["FP16"])

    def test_fp16_comparable_to_int16(self, model):
        specs = self._by_name(model)
        ratio = model.area(specs["FP16"]) / model.area(specs["INT16 (w/ 48-bit Acc.)"])
        assert 1.0 < ratio < 1.6

    def test_int8_cheapest(self, model):
        specs = self._by_name(model)
        int8 = model.area(specs["INT8 (w/ 32-bit Acc.)"])
        assert all(
            int8 <= model.area(s) for s in TABLE1_SPECS
        )

    def test_smaller_accumulator_is_cheaper(self, model):
        specs = self._by_name(model)
        assert model.area(specs["INT8 (w/ 32-bit Acc.)"]) < model.area(
            specs["INT8 (w/ 48-bit Acc.)"]
        )


class TestExtrapolation:
    def test_custom_format(self, model):
        fp8 = MacUnitSpec("FP8", sig_bits=4, exp_bits=4, acc_bits=4)
        assert 0 < model.area(fp8) < model.area(TABLE1_SPECS[3])  # < FP16

    def test_breakdown_components(self, model):
        parts = model.breakdown(TABLE1_SPECS[3])  # FP16
        assert parts["multiplier"] > 0
        assert set(parts) == {
            "constant", "multiplier", "accumulator", "exponent", "shift_round",
        }

    def test_breakdown_sums_to_area(self, model):
        spec = TABLE1_SPECS[0]
        assert sum(model.breakdown(spec).values()) == pytest.approx(model.area(spec))
