"""Tests for the power/energy models (Figs. 11-13)."""

import pytest

from repro.apps.models import ALEXNET, DS2, GNMT
from repro.perf.energy import DevicePowerModel, EnergyModel, SystemPowerParams
from repro.perf.latency import PIM_HBM, PROC_HBM


@pytest.fixture(scope="module")
def hbm():
    return EnergyModel(PROC_HBM)


@pytest.fixture(scope="module")
def pim():
    return EnergyModel(PIM_HBM)


@pytest.fixture(scope="module")
def x4():
    return EnergyModel(PROC_HBM, bandwidth_scale=4.0)


class TestFig11DeviceBreakdown:
    def test_hbm_fractions_sum_to_one(self):
        assert sum(DevicePowerModel().hbm_breakdown().values()) == pytest.approx(1.0)

    def test_pim_total_within_paper_band(self):
        """Paper: PIM-HBM consumes only 5.4% more power than HBM."""
        total = DevicePowerModel().pim_total
        assert 1.02 <= total <= 1.09

    def test_bank_components_scale_4x(self):
        dev = DevicePowerModel()
        hbm, pim = dev.hbm_breakdown(), dev.pim_breakdown()
        assert pim["cell"] == pytest.approx(4 * hbm["cell"])
        assert pim["iosa_decoders"] == pytest.approx(4 * hbm["iosa_decoders"])

    def test_bus_power_mostly_eliminated(self):
        dev = DevicePowerModel()
        assert dev.pim_breakdown()["global_bus"] < 0.15 * dev.hbm_breakdown()["global_bus"]

    def test_energy_per_bit_reduction_3p5x(self):
        """Paper: PIM reduces energy per bit transfer by 3.5x."""
        assert 3.2 <= DevicePowerModel().energy_per_bit_reduction <= 4.2

    def test_gated_buffer_saving_about_10pct(self):
        """Paper: gating the buffer-die I/O would save another ~10%."""
        assert 0.05 <= DevicePowerModel().gated_buffer_saving <= 0.15


class TestFig12Kernels:
    def test_gemv_efficiency_8x(self, hbm, pim):
        """Paper: PIM-HBM gives 8.25x higher GEMV energy efficiency."""
        eh = hbm.kernel_energy_j(hbm.gemv_phase(1024, 4096))
        ep = pim.kernel_energy_j(pim.gemv_phase(1024, 4096))
        assert 6.5 <= eh / ep <= 10.5

    def test_add_efficiency_1p4x(self, hbm, pim):
        eh = hbm.kernel_energy_j(hbm.add_phase(2 * 1024 * 1024))
        ep = pim.kernel_energy_j(pim.add_phase(2 * 1024 * 1024))
        assert 1.1 <= eh / ep <= 1.8

    def test_x4_efficiency_roughly_flat(self, hbm, x4):
        """Paper: PROC-HBMx4 has efficiency similar to PROC-HBM for the
        memory-bound microbenchmark (power and performance scale together)."""
        eh = hbm.kernel_energy_j(hbm.gemv_phase(1024, 4096))
        e4 = x4.kernel_energy_j(x4.gemv_phase(1024, 4096))
        assert eh / e4 < 2.5  # far below PIM's ~8x


class TestFig12Apps:
    def test_ds2_3p2(self, hbm, pim):
        eh, _ = hbm.app_energy_j(DS2)
        ep, _ = pim.app_energy_j(DS2)
        assert 2.6 <= eh / ep <= 3.9

    def test_gnmt_1p38(self, hbm, pim):
        eh, _ = hbm.app_energy_j(GNMT)
        ep, _ = pim.app_energy_j(GNMT)
        assert 1.1 <= eh / ep <= 1.7

    def test_alexnet_1p5(self, hbm, pim):
        eh, _ = hbm.app_energy_j(ALEXNET)
        ep, _ = pim.app_energy_j(ALEXNET)
        assert 1.05 <= eh / ep <= 1.8

    def test_ds2_vs_x4(self, pim, x4):
        """Paper: PIM-HBM is 2.8x more efficient than PROC-HBMx4 on DS2."""
        ep, _ = pim.app_energy_j(DS2)
        e4, _ = x4.app_energy_j(DS2)
        assert 1.6 <= e4 / ep <= 3.4


class TestFig13PowerTrace:
    def test_trace_covers_execution(self, pim):
        trace = pim.power_trace(DS2, points=32)
        assert len(trace) == 32
        times = [t for t, _ in trace]
        assert times == sorted(times)

    def test_pim_average_power_lower_than_hbm_during_lstm(self, hbm, pim):
        """Fig. 13: PIM-HBM improves DS2 energy via shorter execution AND
        lower average power."""
        assert pim.app_average_power_w(DS2) < hbm.app_average_power_w(DS2) * 1.35

    def test_powers_are_physical(self, hbm, pim):
        params = SystemPowerParams()
        for model in (hbm, pim):
            for _, p in model.power_trace(DS2, points=16):
                assert 0 < p < params.proc_peak_w + 4 * params.mem_stream_w

    def test_hbm_runs_longer(self, hbm, pim):
        _, t_hbm = hbm.app_energy_j(DS2)
        _, t_pim = pim.app_energy_j(DS2)
        assert t_hbm > 2 * t_pim
