"""Tests for the TDP/thermal headroom check (Section VII-C)."""

import pytest

from repro.perf.thermal import ThermalBudget, thermal_report


class TestThermalBudget:
    def test_tdp_above_streaming(self):
        budget = ThermalBudget()
        assert budget.tdp_w > budget.hbm_streaming_w

    def test_pim_stays_within_tdp(self):
        """Paper: +5.4% power stays within the HBM system's TDP."""
        report = thermal_report()
        assert report["within_tdp"] == 1.0
        assert report["pim_headroom"] > 0

    def test_pim_headroom_smaller_than_hbm(self):
        report = thermal_report()
        assert 0 < report["pim_headroom"] < report["hbm_headroom"]

    def test_gated_pim_has_thermal_advantage(self):
        """Paper: with the buffer-die I/O gated, PIM would draw ~10% less
        than HBM — 'PIM-HBM can also offer a thermal advantage'."""
        report = thermal_report()
        assert report["thermal_advantage_when_gated"] == 1.0
        assert report["pim_gated_w"] < report["hbm_streaming_w"]

    def test_tight_margin_fails(self):
        """A SiP provisioned with under 5.4% margin could not take PIM."""
        report = thermal_report(budget=ThermalBudget(margin=0.03))
        assert report["within_tdp"] == 0.0

    def test_absolute_numbers_scale(self):
        big = thermal_report(budget=ThermalBudget(hbm_streaming_w=30.0))
        small = thermal_report(budget=ThermalBudget(hbm_streaming_w=15.0))
        assert big["pim_w"] == pytest.approx(2 * small["pim_w"])
        assert big["pim_headroom"] == pytest.approx(small["pim_headroom"])
