"""The chaos schedule: seeded, validated, deterministic."""

import pytest

from repro.chaos import KINDS, ChaosEvent, ChaosSchedule


class TestChaosEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            ChaosEvent(at_ns=0.0, kind="meteor", shard=0)

    def test_known_kinds_accepted(self):
        for kind in KINDS:
            event = ChaosEvent(at_ns=100.0, kind=kind, shard=1)
            assert event.kind == kind


class TestChaosSchedule:
    def test_same_seed_same_schedule(self):
        a = ChaosSchedule.generate(7, workers=4)
        b = ChaosSchedule.generate(7, workers=4)
        assert a == b

    def test_different_seeds_differ(self):
        a = ChaosSchedule.generate(7, workers=4)
        b = ChaosSchedule.generate(8, workers=4)
        assert a != b

    def test_every_requested_kind_scripted_once(self):
        schedule = ChaosSchedule.generate(7, workers=4)
        assert schedule.kinds() == KINDS
        assert len(schedule.events) == len(KINDS)

    def test_kind_subset_respected(self):
        subset = ("kill", "bit_flips")
        schedule = ChaosSchedule.generate(3, workers=2, kinds=subset)
        assert set(schedule.kinds()) == set(subset)

    def test_wave_zero_always_fault_free(self):
        for seed in range(5):
            schedule = ChaosSchedule.generate(seed, workers=4)
            by_wave = schedule.by_wave(50_000.0)
            assert 0 not in by_wave

    def test_by_wave_partitions_all_events(self):
        schedule = ChaosSchedule.generate(7, workers=4)
        by_wave = schedule.by_wave(50_000.0)
        assert sum(len(v) for v in by_wave.values()) == len(schedule.events)

    def test_shards_within_worker_range(self):
        schedule = ChaosSchedule.generate(7, workers=3)
        assert all(0 <= e.shard < 3 for e in schedule.events)
