"""The chaos harness end to end: invariants hold, properties survive fuzzing.

The hypothesis property is the satellite acceptance check: *any* seeded
chaos schedule (over the fast fault kinds — no wall-clock stalls) leaves
every request with exactly one terminal outcome, bit-exact results, a
valid merged trace, zero device spans for dropped work, and full ring
capacity after healing.  ``gates=False`` skips the fault-free baseline
session the degradation gates need, keeping each example cheap.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import ChaosSchedule, run_chaos
from repro.chaos.invariants import check_capacity, check_conservation
from repro.stack.profiler import RequestStats, ServingProfile

# Fault kinds with no scripted wall-clock stall: cheap enough to fuzz.
# kill_router qualifies: the router crash is emulated in-process and its
# journal recovery replays on the simulated clock.
FAST_KINDS = (
    "kill",
    "kill_router",
    "corrupt_pipe",
    "corrupt_shm",
    "bit_flips",
    "fail_channel",
)


class TestHarnessSmoke:
    def test_fast_kinds_scenario_holds_every_invariant(self):
        report = run_chaos(
            seed=3, workers=2, requests=12, kinds=FAST_KINDS, gates=False
        )
        assert report.ok, "\n".join(report.violations)
        assert report.alive_after == [0, 1]
        assert len(report.applied) == len(FAST_KINDS)
        assert sum(report.profile.outcomes().values()) == report.requests

    def test_shm_transport_matches_pipe_oracle(self):
        """Satellite: the same chaos schedule under transport="shm" is
        bit-exact against its pipe twin — profiles, outcomes, and span
        trees — with the corrupt_shm kind striking a real frame.  The
        schedule includes kill_router, so the run also proves recovery
        re-creates the shm plumbing without leaking a segment."""
        from repro.obs.export import diff_span_trees
        from repro.stack.shm import live_segments

        segments_before = live_segments()
        runs = {
            transport: run_chaos(
                seed=3, workers=2, requests=12, kinds=FAST_KINDS,
                gates=False, transport=transport,
            )
            for transport in ("pipe", "shm")
        }
        pipe, shm = runs["pipe"], runs["shm"]
        assert shm.ok, "\n".join(shm.violations)
        assert pipe.profile.render() == shm.profile.render()
        assert pipe.profile.outcomes() == shm.profile.outcomes()
        assert [
            (r.request_id, r.outcome, r.shard, r.finish_ns)
            for r in pipe.profile.requests
        ] == [
            (r.request_id, r.outcome, r.shard, r.finish_ns)
            for r in shm.profile.requests
        ]
        assert diff_span_trees(pipe.tracer, shm.tracer) is None
        assert live_segments() == segments_before

    def test_report_renders(self):
        report = run_chaos(
            seed=3, workers=2, requests=8, kinds=("bit_flips",), gates=False
        )
        text = "\n".join(report.render())
        assert "chaos scenario" in text
        assert "violations" in text

    def test_explicit_schedule_honoured(self):
        schedule = ChaosSchedule.generate(5, workers=2, kinds=("kill",))
        report = run_chaos(
            seed=5, workers=2, requests=8, schedule=schedule, gates=False
        )
        assert report.ok, "\n".join(report.violations)
        assert report.schedule is schedule
        assert any(entry.startswith("kill@") for entry in report.applied)


class TestInvariantCheckers:
    """The checkers themselves must catch violations, not just pass."""

    def test_conservation_flags_phantom_profile_entry(self):
        profile = ServingProfile()
        stats = RequestStats(
            request_id=99, op="gemv", arrival_ns=0.0, start_ns=0.0,
            finish_ns=1.0,
        )
        stats.outcome = "completed"
        profile.requests.append(stats)
        violations = check_conservation([], profile)
        assert any("never submitted" in v for v in violations)

    def test_capacity_flags_missing_shard(self):
        violations = check_capacity([0], workers=2)
        assert violations
        assert any("capacity" in v for v in violations)

    def test_capacity_ok_when_full(self):
        assert check_capacity([0, 1], workers=2) == []


class TestKillRouter:
    """The journal is the only survivor of a router crash (PR 8)."""

    def test_kill_router_wave_recovers_every_request(self, tmp_path):
        report = run_chaos(
            seed=11, workers=2, requests=16, kinds=("kill_router",),
            gates=False, journal_dir=str(tmp_path),
        )
        assert report.ok, "\n".join(report.violations)
        assert "kill_router@router" in report.applied
        # The crashed wave's requests came back through journal recovery:
        # terminal, bit-exact (checked by the invariant suite), and
        # tagged so they never inflate goodput.
        assert report.profile.recovered > 0
        recovered = [s for s in report.profile.requests if s.recovered]
        assert len(recovered) == report.profile.recovered
        assert all(s.outcome == "completed" for s in recovered)

    def test_kill_router_composes_with_worker_faults(self):
        report = run_chaos(
            seed=4, workers=2, requests=16,
            kinds=("kill", "kill_router", "corrupt_pipe"), gates=False,
        )
        assert report.ok, "\n".join(report.violations)
        assert "kill_router@router" in report.applied


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    kinds=st.sets(st.sampled_from(FAST_KINDS), min_size=1).map(
        lambda s: tuple(sorted(s))
    ),
)
@settings(max_examples=5, deadline=None)
def test_any_chaos_schedule_preserves_fabric_contract(seed, kinds):
    """Property (satellite): every request ends in exactly one terminal
    outcome, dropped work has zero device spans, capacity recovers —
    regardless of which faults fire where (a router crash included:
    SIGKILL at any scheduled wave point, then recovery, still yields
    exactly one bit-exact terminal outcome per journaled request)."""
    report = run_chaos(
        seed=seed, workers=2, requests=8, kinds=kinds, gates=False
    )
    assert report.ok, "\n".join(report.violations)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=3, deadline=None)
def test_router_crash_at_any_wave_point_conserves_outcomes(seed):
    """Property (tentpole acceptance): a kill_router event at any seeded
    wave point, recovered through the journal, leaves every request with
    exactly one terminal outcome, bit-exact against the golden path."""
    report = run_chaos(
        seed=seed, workers=2, requests=12, kinds=("kill_router", "kill"),
        gates=False,
    )
    assert report.ok, "\n".join(report.violations)
    assert report.profile.recovered > 0
