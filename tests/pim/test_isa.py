"""Tests for the PIM ISA (repro.pim.isa) — Table II/III behaviour."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pim.isa import (
    CRF_ENTRIES,
    GRF_REGS,
    SRF_REGS,
    Instruction,
    Opcode,
    Operand,
    OperandSpace,
    decode,
    encode,
    exit_,
    fill,
    jump,
    legal_compute_combinations,
    legal_move_combinations,
    mac,
    mad,
    mov,
    mul,
    nop,
)
from repro.pim.isa import IllegalInstruction, add as isa_add


GRF_A = lambda i=0: Operand(OperandSpace.GRF_A, i)
GRF_B = lambda i=0: Operand(OperandSpace.GRF_B, i)
SRF_M = lambda i=0: Operand(OperandSpace.SRF_M, i)
SRF_A = lambda i=0: Operand(OperandSpace.SRF_A, i)
EVEN = Operand(OperandSpace.EVEN_BANK)
ODD = Operand(OperandSpace.ODD_BANK)
HOST = Operand(OperandSpace.HOST)


class TestOpcodeClasses:
    def test_nine_instructions(self):
        assert len(list(Opcode)) == 9

    def test_control_class(self):
        assert Opcode.NOP.is_control and Opcode.JUMP.is_control and Opcode.EXIT.is_control

    def test_arithmetic_class(self):
        for op in (Opcode.ADD, Opcode.MUL, Opcode.MAC, Opcode.MAD):
            assert op.is_arithmetic

    def test_move_class(self):
        assert Opcode.MOV.is_move and Opcode.FILL.is_move


class TestOperand:
    def test_grf_index_range(self):
        Operand(OperandSpace.GRF_A, GRF_REGS - 1)
        with pytest.raises(ValueError):
            Operand(OperandSpace.GRF_A, GRF_REGS)

    def test_srf_index_range(self):
        with pytest.raises(ValueError):
            Operand(OperandSpace.SRF_M, SRF_REGS)

    def test_bank_repr_has_no_index(self):
        assert repr(EVEN) == "EVEN_BANK"
        assert repr(HOST) == "HOST"

    def test_register_repr(self):
        assert repr(GRF_A(3)) == "GRF_A[3]"


class TestValidation:
    def test_mov_bank_to_bank_illegal(self):
        with pytest.raises(IllegalInstruction):
            mov(EVEN, ODD)

    def test_fill_requires_bank_source(self):
        with pytest.raises(IllegalInstruction):
            fill(GRF_A(), GRF_B())

    def test_fill_bank_to_grf_ok(self):
        fill(GRF_A(), EVEN)

    def test_mov_host_to_grf_ok(self):
        mov(GRF_A(), HOST)

    def test_mov_host_to_bank_illegal(self):
        with pytest.raises(IllegalInstruction):
            mov(EVEN, HOST)

    def test_relu_only_on_mov(self):
        with pytest.raises(IllegalInstruction):
            Instruction(Opcode.ADD, dst=GRF_A(), src0=GRF_A(), src1=GRF_B(), relu=True)

    def test_mul_srf_a_source_illegal(self):
        # SRF_A feeds adders, SRF_M feeds multipliers (Table II).
        with pytest.raises(IllegalInstruction):
            mul(GRF_A(), GRF_B(), SRF_A())

    def test_add_srf_m_source_illegal(self):
        with pytest.raises(IllegalInstruction):
            isa_add(GRF_A(), GRF_B(), SRF_M())

    def test_arithmetic_dst_must_be_grf(self):
        with pytest.raises(IllegalInstruction):
            isa_add(EVEN, GRF_A(), GRF_B())

    def test_jump_negative_iterations_illegal(self):
        with pytest.raises(IllegalInstruction):
            jump(-1, -1)

    def test_mad_src2_index_must_match_src1(self):
        instr = mad(GRF_A(0), EVEN, SRF_M(2), SRF_A(3))
        with pytest.raises(IllegalInstruction):
            encode(instr)


class TestEncodeDecode:
    def test_nop_roundtrip(self):
        assert decode(encode(nop(3))) == nop(3)

    def test_jump_negative_offset_roundtrip(self):
        instr = jump(-4, 100)
        out = decode(encode(instr))
        assert out.imm0 == -4
        assert out.imm1 == 100

    def test_jump_large_iteration_count(self):
        instr = jump(-1, 131071)  # 17-bit field
        assert decode(encode(instr)).imm1 == 131071

    def test_exit_roundtrip(self):
        assert decode(encode(exit_())).opcode is Opcode.EXIT

    def test_mac_accumulator_is_dst(self):
        instr = mac(GRF_B(5), EVEN, GRF_A(2))
        out = decode(encode(instr))
        assert out.src2.space is OperandSpace.GRF_B
        assert out.src2.index == 5

    def test_mad_src2_shares_src1_index(self):
        instr = mad(GRF_A(1), EVEN, SRF_M(3), SRF_A(3))
        out = decode(encode(instr))
        assert out.src2 == SRF_A(3)

    def test_mad_bank_src1_grf_src2(self):
        instr = mad(GRF_A(1), EVEN, ODD, GRF_B(4))
        out = decode(encode(instr))
        assert out.src2 == GRF_B(4)

    def test_aam_flag_roundtrip(self):
        instr = mac(GRF_B(0), EVEN, GRF_A(0), aam=True)
        assert decode(encode(instr)).aam

    def test_relu_flag_roundtrip(self):
        instr = mov(GRF_A(0), GRF_B(0), relu=True)
        assert decode(encode(instr)).relu

    def test_opcode_in_top_bits(self):
        assert encode(exit_()) >> 28 == int(Opcode.EXIT)

    def test_word_is_32_bit(self):
        for instr in (nop(), jump(-1, 7), mac(GRF_B(7), EVEN, GRF_A(7))):
            assert 0 <= encode(instr) < 2**32


@st.composite
def valid_instructions(draw):
    """Generate random valid instructions for round-trip testing."""
    kind = draw(st.sampled_from(["nop", "jump", "exit", "mov", "fill",
                                 "add", "mul", "mac", "mad"]))
    idx = st.integers(0, GRF_REGS - 1)
    grf = st.builds(Operand, st.sampled_from(
        [OperandSpace.GRF_A, OperandSpace.GRF_B]), idx)
    bank = st.sampled_from([EVEN, ODD])
    if kind == "nop":
        return nop(draw(st.integers(0, 100)))
    if kind == "jump":
        return jump(draw(st.integers(-512, 511)), draw(st.integers(0, 2**17 - 1)))
    if kind == "exit":
        return exit_()
    aam = draw(st.booleans())
    if kind == "mov":
        src = draw(st.one_of(grf, bank, st.just(HOST),
                             st.builds(Operand, st.sampled_from(
                                 [OperandSpace.SRF_M, OperandSpace.SRF_A]), idx)))
        return mov(draw(grf), src, aam=aam, relu=draw(st.booleans()))
    if kind == "fill":
        return fill(draw(grf), draw(bank), aam=aam)
    src0 = draw(st.one_of(grf, bank))
    if kind == "mul":
        src1 = draw(st.one_of(grf, bank,
                              st.builds(Operand, st.just(OperandSpace.SRF_M), idx)))
        return mul(draw(grf), src0, src1, aam=aam)
    if kind == "add":
        operands = st.one_of(grf, bank,
                             st.builds(Operand, st.just(OperandSpace.SRF_A), idx))
        return isa_add(draw(grf), draw(operands), draw(operands), aam=aam)
    if kind == "mac":
        src1 = draw(st.one_of(grf, bank,
                              st.builds(Operand, st.just(OperandSpace.SRF_M), idx)))
        return mac(draw(grf), src0, src1, aam=aam)
    i = draw(idx)
    return mad(draw(grf), src0, Operand(OperandSpace.SRF_M, i),
               Operand(OperandSpace.SRF_A, i), aam=aam)


class TestRoundTripProperty:
    @given(valid_instructions())
    def test_encode_decode_identity(self, instr):
        out = decode(encode(instr))
        assert out.opcode == instr.opcode
        assert out.aam == instr.aam
        assert out.relu == instr.relu
        if instr.opcode.is_control:
            assert (out.imm0, out.imm1) == (instr.imm0, instr.imm1)
        else:
            assert out.dst == instr.dst
            assert out.src0 == instr.src0
            assert out.src1 == instr.src1


class TestTableII:
    def test_compute_combination_count_order(self):
        """Table II reports 114 compute combinations; our reconstructed
        predicate lands in the same order of magnitude."""
        combos = legal_compute_combinations()
        assert 80 <= len(combos) <= 150

    def test_per_opcode_split(self):
        combos = legal_compute_combinations()
        by_op = {}
        for op, *_ in combos:
            by_op[op] = by_op.get(op, 0) + 1
        # MUL has fewer source options than ADD; MAC is the most restricted.
        assert by_op[Opcode.ADD] > by_op[Opcode.MUL]
        assert by_op[Opcode.MAC] < by_op[Opcode.MUL]

    def test_move_combinations(self):
        combos = legal_move_combinations()
        assert 20 <= len(combos) <= 32  # paper: 24

    def test_all_enumerated_compute_combos_validate(self):
        none = Operand(OperandSpace.NONE)
        for op, s0, s1, d in legal_compute_combinations():
            src2 = none
            if op is Opcode.MAC:
                src2 = Operand(d, 0)
            if op is Opcode.MAD:
                src2 = Operand(OperandSpace.SRF_A, 0)
            Instruction(
                op,
                dst=Operand(d, 0),
                src0=Operand(s0, 0),
                src1=Operand(s1, 0),
                src2=src2,
            )

    def test_crf_geometry(self):
        assert CRF_ENTRIES == 32
        assert GRF_REGS == 8
        assert SRF_REGS == 8
