"""Tests for the PIM microkernel assembler."""

import pytest

from repro.pim.assembler import AssemblyError, assemble, assemble_words, disassemble
from repro.pim.isa import CRF_ENTRIES, Opcode, OperandSpace, decode


class TestParsing:
    def test_gemv_microkernel(self):
        program = assemble(
            """
            MOV  GRF_A[A], HOST
            JUMP -1, 7
            MAC  GRF_B[A], EVEN_BANK, GRF_A[A]
            JUMP -1, 7
            JUMP -4, 3
            MOV  EVEN_BANK[A], GRF_B[A]
            JUMP -1, 7
            EXIT
            """
        )
        assert [i.opcode for i in program] == [
            Opcode.MOV, Opcode.JUMP, Opcode.MAC, Opcode.JUMP,
            Opcode.JUMP, Opcode.MOV, Opcode.JUMP, Opcode.EXIT,
        ]
        assert program[2].aam
        assert program[2].src0.space is OperandSpace.EVEN_BANK

    def test_comments_and_blank_lines(self):
        program = assemble("; header\n\nNOP  # trailing\n")
        assert len(program) == 1

    def test_mov_relu(self):
        (instr,) = assemble("MOV(RELU) GRF_A[0], GRF_B[1]")
        assert instr.relu
        assert instr.opcode is Opcode.MOV

    def test_register_indices(self):
        (instr,) = assemble("ADD GRF_B[3], GRF_A[1], SRF_A[2]")
        assert instr.dst.index == 3
        assert instr.src0.index == 1
        assert instr.src1.index == 2

    def test_mad_four_operands(self):
        (instr,) = assemble("MAD GRF_A[0], EVEN_BANK, SRF_M[2], SRF_A[2]")
        assert instr.opcode is Opcode.MAD
        assert instr.src2.space is OperandSpace.SRF_A

    def test_evenbank_alias(self):
        (instr,) = assemble("FILL GRF_A[0], EVENBANK")
        assert instr.src0.space is OperandSpace.EVEN_BANK

    def test_case_insensitive(self):
        (instr,) = assemble("fill grf_a[0], odd_bank")
        assert instr.src0.space is OperandSpace.ODD_BANK

    def test_nop_default_count(self):
        (instr,) = assemble("NOP")
        assert instr.imm0 == 1

    def test_nop_multi_cycle(self):
        (instr,) = assemble("NOP 5")
        assert instr.imm0 == 5


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble("FROB GRF_A[0], GRF_B[0]")

    def test_unknown_space(self):
        with pytest.raises(AssemblyError):
            assemble("MOV XRF[0], GRF_B[0]")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError):
            assemble("MAC GRF_B[0], EVEN_BANK")

    def test_jump_needs_two_args(self):
        with pytest.raises(AssemblyError):
            assemble("JUMP -1")

    def test_crf_overflow(self):
        src = "\n".join(["NOP"] * (CRF_ENTRIES + 1))
        with pytest.raises(AssemblyError):
            assemble(src)

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblyError, match="line 2"):
            assemble("NOP\nBAD OP")


class TestWordsAndDisassembly:
    def test_assemble_words_pads_to_crf(self):
        words = assemble_words("EXIT")
        assert len(words) == CRF_ENTRIES
        assert decode(words[0]).opcode is Opcode.EXIT
        assert all(w == 0 for w in words[1:])

    def test_disassemble_stops_at_exit(self):
        words = assemble_words("NOP\nEXIT")
        lines = disassemble(words)
        assert len(lines) == 2
        assert lines[-1] == "EXIT"

    def test_source_roundtrip(self):
        source = """
        FILL GRF_A[A], EVEN_BANK
        JUMP -1, 7
        ADD  GRF_B[A], GRF_A[A], ODD_BANK
        JUMP -1, 7
        MOV  EVEN_BANK[A], GRF_B[A]
        JUMP -1, 7
        JUMP -6, 99
        EXIT
        """
        once = assemble(source)
        again = assemble("\n".join(disassemble(assemble_words(source))))
        assert once == again
