"""Tests for the 5-stage pipeline timing model (Section IV-B)."""

import pytest

from repro.pim.assembler import assemble
from repro.pim.pipeline import STAGES, PipelineModel, stages_for


def instr(text):
    (parsed,) = assemble(text)
    return parsed


class TestStageRules:
    def test_mac_with_bank_uses_all_five(self):
        mac = instr("MAC GRF_B[0], EVEN_BANK, GRF_A[0]")
        assert stages_for(mac) == STAGES

    def test_mul_skips_add(self):
        mul = instr("MUL GRF_B[0], EVEN_BANK, GRF_A[0]")
        stages = stages_for(mul)
        assert "ADD" not in stages
        assert "MULT" in stages

    def test_add_skips_mult(self):
        add = instr("ADD GRF_B[0], GRF_A[0], GRF_A[1]")
        stages = stages_for(add)
        assert "MULT" not in stages
        assert "ADD" in stages

    def test_register_only_instruction_skips_bank_read(self):
        """Section IV-B: 'The PIM execution unit can skip the second stage
        when a given PIM instruction does not require any data from a
        bank (e.g., MAD GRF_B[0], GRF_A[0], GRF_B[1]).'"""
        mad = instr("MAD GRF_A[0], GRF_A[1], SRF_M[2], SRF_A[2]")
        assert "BANK_READ" not in stages_for(mad)

    def test_bank_operand_requires_bank_read(self):
        fill = instr("FILL GRF_A[0], EVEN_BANK")
        assert "BANK_READ" in stages_for(fill)

    def test_mov_skips_alu(self):
        mov = instr("MOV GRF_A[0], GRF_B[0]")
        stages = stages_for(mov)
        assert "MULT" not in stages and "ADD" not in stages
        assert stages[-1] == "WRITE_BACK"

    def test_control_instructions_only_fetch(self):
        assert stages_for(instr("NOP")) == ("FETCH_DECODE",)
        assert stages_for(instr("EXIT")) == ("FETCH_DECODE",)
        assert stages_for(instr("JUMP -1, 7")) == ("FETCH_DECODE",)


class TestDeterministicLatency:
    def test_latency_is_per_class_constant(self):
        model = PipelineModel()
        mac1 = instr("MAC GRF_B[0], EVEN_BANK, GRF_A[0]")
        mac2 = instr("MAC GRF_B[7], ODD_BANK, GRF_A[3]")
        assert model.latency(mac1) == model.latency(mac2) == 5

    def test_latencies_ordered_by_depth(self):
        model = PipelineModel()
        mov = model.latency(instr("MOV GRF_A[0], GRF_B[0]"))
        add = model.latency(instr("ADD GRF_B[0], GRF_A[0], GRF_A[1]"))
        mac = model.latency(instr("MAC GRF_B[0], EVEN_BANK, GRF_A[0]"))
        assert mov < add < mac

    def test_completion_times_deterministic(self):
        model = PipelineModel()
        mac = instr("MAC GRF_B[0], EVEN_BANK, GRF_A[0]")
        stream = [(mac, t) for t in (0, 4, 8, 12)]
        completions, _ = model.schedule(stream)
        deltas = [b - a for a, b in zip(completions, completions[1:])]
        assert deltas == [4, 4, 4]  # exactly the trigger cadence


class TestStructuralHazards:
    def test_no_hazard_at_tccd_l_cadence(self):
        """At the AB-mode cadence (tCCD_L = 4 core cycles) a MAC stream
        flows hazard-free — the basis of the deterministic-latency claim."""
        model = PipelineModel()
        mac = instr("MAC GRF_B[0], EVEN_BANK, GRF_A[0]")
        stream = [(mac, 4 * i) for i in range(16)]
        assert model.hazards(stream) == []

    def test_uniform_stream_pipelines_at_cadence_one(self):
        model = PipelineModel()
        mac = instr("MAC GRF_B[0], EVEN_BANK, GRF_A[0]")
        assert model.min_safe_cadence([mac] * 8) == 1

    def test_mixed_depth_stream_can_collide(self):
        """A deep instruction followed immediately by a shallow one can
        reach WRITE_BACK in the same cycle — mixed streams need spacing."""
        model = PipelineModel()
        mac = instr("MAC GRF_B[0], EVEN_BANK, GRF_A[0]")  # 5 stages
        mov = instr("MOV GRF_A[0], GRF_B[0]")  # 2 stages
        colliding = [(mac, 0), (mov, 3)]  # both hit WRITE_BACK at cycle 4
        assert model.hazards(colliding)
        safe = [(mac, 0), (mov, 4)]
        assert model.hazards(safe) == []

    def test_gemv_microkernel_stream_is_clean(self):
        """The actual GEMV microkernel (staging MOVs + MACs) at tCCD_L."""
        from repro.stack.kernels import GemvKernel

        program = assemble(GemvKernel.MICROKERNEL.format(reps=1))
        data_instrs = [i for i in program if not i.opcode.is_control]
        model = PipelineModel()
        stream = [(data_instrs[i % len(data_instrs)], 4 * i) for i in range(12)]
        assert model.hazards(stream) == []
