"""Tests for the PIM register files and their memory-mapped access."""

import numpy as np
import pytest

from repro.pim.isa import CRF_ENTRIES, GRF_REGS, OperandSpace, SRF_REGS
from repro.pim.registers import GRF_REG_BYTES, LANES, RegisterFiles


@pytest.fixture
def regs():
    return RegisterFiles()


class TestGeometry:
    def test_crf_32_entries(self, regs):
        assert len(regs.crf) == CRF_ENTRIES

    def test_grf_split(self, regs):
        assert regs.grf_a.shape == (GRF_REGS, LANES)
        assert regs.grf_b.shape == (GRF_REGS, LANES)

    def test_srf_split(self, regs):
        assert regs.srf_m.shape == (SRF_REGS,)
        assert regs.srf_a.shape == (SRF_REGS,)

    def test_one_grf_register_is_one_column(self):
        assert GRF_REG_BYTES == 32


class TestTypedAccess:
    def test_grf_selector(self, regs):
        assert regs.grf(OperandSpace.GRF_A) is regs.grf_a
        assert regs.grf(OperandSpace.GRF_B) is regs.grf_b
        with pytest.raises(ValueError):
            regs.grf(OperandSpace.SRF_M)

    def test_srf_selector(self, regs):
        assert regs.srf(OperandSpace.SRF_M) is regs.srf_m
        with pytest.raises(ValueError):
            regs.srf(OperandSpace.GRF_A)

    def test_srf_read_broadcasts(self, regs):
        regs.srf_m[3] = np.float16(2.5)
        vec = regs.read_vector(OperandSpace.SRF_M, 3)
        assert vec.shape == (LANES,)
        assert (vec == np.float16(2.5)).all()

    def test_grf_read_is_a_copy(self, regs):
        vec = regs.read_vector(OperandSpace.GRF_A, 0)
        vec[:] = 1.0
        assert regs.grf_a[0].sum() == 0

    def test_write_vector(self, regs):
        value = np.arange(LANES, dtype=np.float16)
        regs.write_vector(OperandSpace.GRF_B, 2, value)
        assert np.array_equal(regs.grf_b[2], value)

    def test_write_vector_to_srf_raises(self, regs):
        with pytest.raises(ValueError):
            regs.write_vector(OperandSpace.SRF_A, 0, np.zeros(LANES))


class TestMemoryMappedColumns:
    def test_crf_column_roundtrip(self, regs):
        words = np.arange(8, dtype="<u4") * 0x01010101
        regs.write_crf_column(2, words.view(np.uint8))
        assert regs.crf[16:24] == list(words)
        assert np.array_equal(regs.read_crf_column(2), words.view(np.uint8))

    def test_crf_column_out_of_range(self, regs):
        with pytest.raises(IndexError):
            regs.write_crf_column(4, np.zeros(32, dtype=np.uint8))

    def test_grf_column_mapping(self, regs):
        value = np.arange(LANES, dtype=np.float16)
        regs.write_grf_column(3, value.view(np.uint8))  # GRF_A[3]
        regs.write_grf_column(11, (value * 2).view(np.uint8))  # GRF_B[3]
        assert np.array_equal(regs.grf_a[3], value)
        assert np.array_equal(regs.grf_b[3], value * 2)

    def test_grf_column_read(self, regs):
        regs.grf_b[5][:] = np.float16(1.5)
        raw = regs.read_grf_column(13)
        assert np.array_equal(raw.view(np.float16), regs.grf_b[5])

    def test_srf_column_mapping(self, regs):
        scalars = np.arange(SRF_REGS, dtype=np.float16)
        payload = np.zeros(GRF_REG_BYTES, dtype=np.uint8)
        payload[: SRF_REGS * 2] = scalars.view(np.uint8)
        regs.write_srf_column(0, payload)
        regs.write_srf_column(1, payload)
        assert np.array_equal(regs.srf_m, scalars)
        assert np.array_equal(regs.srf_a, scalars)

    def test_srf_column_read(self, regs):
        regs.srf_a[:] = np.float16(0.5)
        raw = regs.read_srf_column(1)
        assert np.array_equal(raw[: SRF_REGS * 2].view(np.float16), regs.srf_a)

    def test_srf_column_out_of_range(self, regs):
        with pytest.raises(IndexError):
            regs.write_srf_column(2, np.zeros(32, dtype=np.uint8))
