"""The compiled-trace cache contract: bounded, content-keyed, replicated.

Three properties keep ``exec_mode="fused"`` safe to leave on:

* *LRU-bounded* — the cache never exceeds its limit; evicted programs
  recompile (correctly) on their next window instead of growing the
  working set without bound.
* *Content-keyed* — the key embeds the CRF words and sequencer entry
  state, so any observable program change is a miss by construction.
* *Independent replicas* — every serving process owns a private cache
  (``PimFabric`` workers, ``serve-bench --workers N``); replicas compile
  independently and still produce bit-identical results.
"""

import numpy as np

from repro.pim.assembler import assemble_words
from repro.pim.fused import CompiledTrace, FusedLockstepGroup, TraceCache

from tests.pim.test_lockstep import _build_group, _program, _rd, _snapshot

GEMV = "MAC GRF_B[A], EVEN_BANK, SRF_M[A]\nJUMP -1, 7\nEXIT"
FILLER = "FILL GRF_A[A], EVEN_BANK\nJUMP -1, 7\nEXIT"
MOV = "MOV GRF_A[0], GRF_B[0]\nEXIT"


def _fused(seed=0, cache=None):
    base = _build_group(seed, enabled=True)
    return FusedLockstepGroup(base.units, cache=cache)


def _window(group, triggers):
    for trig in triggers:
        group.trigger_all(trig)
    group.flush_pending()
    group.start_all()


class TestLruBound:
    def test_insertions_never_exceed_limit(self):
        cache = TraceCache(limit=2)
        for i in range(5):
            cache.put((0, (), (), (i,)), CompiledTrace(poisoned=False))
            assert len(cache) <= 2
        assert cache.stats.compiles == 5
        assert cache.stats.evictions == 3
        # Only the two most recent keys survive.
        assert [key[3] for key in cache.keys()] == [(3,), (4,)]

    def test_get_freshens_against_eviction(self):
        cache = TraceCache(limit=2)
        cache.put((0, (), (), ("a",)), CompiledTrace(poisoned=False))
        cache.put((0, (), (), ("b",)), CompiledTrace(poisoned=False))
        assert cache.get((0, (), (), ("a",))) is not None  # freshen "a"
        cache.put((0, (), (), ("c",)), CompiledTrace(poisoned=False))
        assert cache.get((0, (), (), ("b",))) is None  # "b" was LRU
        assert cache.get((0, (), (), ("a",))) is not None

    def test_eviction_recompiles_correctly(self):
        """A limit-1 cache thrashed by two alternating programs still
        produces bit-exact state — eviction costs a compile, never bits."""
        cache = TraceCache(limit=1)
        fused = _fused(7, cache=cache)
        oracle = _build_group(7, enabled=True)
        triggers = [_rd(0, c) for c in range(8)]
        for source in (GEMV, FILLER, GEMV, FILLER):
            _program(fused, source)
            _window(fused, triggers)
            _program(oracle, source)
            for trig in triggers:
                oracle.trigger_all(trig)
            oracle.start_all()
        assert cache.stats.evictions >= 3
        assert cache.stats.compiles == 4  # every alternation recompiles
        assert len(cache) == 1
        assert _snapshot(fused) == _snapshot(oracle)


class TestContentKeys:
    def test_same_program_same_stream_is_one_entry(self):
        cache = TraceCache()
        fused = _fused(1, cache=cache)
        _program(fused, GEMV)
        for _ in range(3):
            _window(fused, [_rd(0, c) for c in range(8)])
        assert cache.stats.compiles == 1 and cache.stats.hits == 2

    def test_distinct_streams_are_distinct_entries(self):
        cache = TraceCache()
        fused = _fused(1, cache=cache)
        _program(fused, FILLER)
        _window(fused, [_rd(0, c) for c in range(8)])
        _program(fused, FILLER)
        _window(fused, [_rd(1, c) for c in range(4)])  # other row/length
        assert cache.stats.compiles == 2

    def test_crf_word_is_in_the_key(self):
        cache = TraceCache()
        fused = _fused(1, cache=cache)
        _program(fused, MOV)
        _window(fused, [_rd(0, 0)])
        # Uniformly rewrite entry 0 across units: new program, new key.
        word = assemble_words("MOV GRF_A[1], GRF_B[1]")[0]
        for unit in fused.units:
            unit.regs.crf[0] = word
        fused.stop_all()
        fused.start_all()
        _window(fused, [_rd(0, 0)])
        assert cache.stats.compiles == 2
        assert cache.stats.hits == 0

    def test_invalidate_channel_is_scoped(self):
        cache = TraceCache()
        cache.put((0, (), (), ("x",)), CompiledTrace(poisoned=False))
        cache.put((1, (), (), ("x",)), CompiledTrace(poisoned=False))
        assert cache.invalidate_channel(0) == 1
        assert cache.stats.invalidations == 1
        assert [key[0] for key in cache.keys()] == [1]


class TestSystemKnob:
    def test_trace_cache_size_is_plumbed(self):
        from repro.stack.runtime import PimSystem, SystemConfig

        system = PimSystem(
            SystemConfig(
                num_pchs=2, num_rows=64, exec_mode="fused",
                trace_cache_size=4,
            )
        )
        assert system._trace_cache is not None
        assert system._trace_cache.limit == 4
        assert system.driver.trace_cache is system._trace_cache

    def test_non_fused_modes_build_no_cache(self):
        from repro.stack.runtime import PimSystem, SystemConfig

        for mode in (None, "lockstep", "scalar"):
            system = PimSystem(
                SystemConfig(num_pchs=2, num_rows=64, exec_mode=mode)
            )
            assert system._trace_cache is None
            assert system.driver.trace_cache is None


class TestReplicaIndependence:
    def test_fabric_workers_compile_independently_bit_exact(self):
        """Each fabric worker process owns a private cache; a 2-worker
        fused fabric must match a lock-step fabric handle-for-handle."""
        from repro.stack import PimFabric, Request, SystemConfig
        from repro.stack.blas import gemv_reference

        def run(mode):
            config = SystemConfig(
                num_pchs=2, num_rows=256, simulate_pchs=1, server_seed=7,
                exec_mode=mode,
            )
            rng = np.random.default_rng(7)
            weights = [
                (rng.standard_normal((16, 8)) * 0.25).astype(np.float16)
                for _ in range(4)
            ]
            items = [
                Request(
                    "gemv", weights=weights[i % 4],
                    a=(rng.standard_normal(8) * 0.25).astype(np.float16),
                    arrival_ns=i * 200.0,
                )
                for i in range(12)
            ]
            with PimFabric(config, workers=2) as fabric:
                handles = [fabric.submit(r) for r in items]
                fabric.run()
            assert {h.shard for h in handles} == {0, 1}
            for h in handles:
                gold = gemv_reference(h.request.weights, h.request.a, 2)
                assert h.result is not None and np.array_equal(h.result, gold)
            return [(h.outcome, h.result.tobytes()) for h in handles]

        assert run("fused") == run("lockstep")
