"""Differential tests: the lock-step batch path vs the per-unit oracle.

A :class:`LockstepGroup` with ``enabled=True`` must be *indistinguishable*
from the historical ``for unit in units: unit.trigger(trig)`` loop — same
register bytes, same bank bytes, same sequencer state, same ``UnitStats``,
same exceptions — across randomized microkernels (JUMP loops, multi-cycle
NOP, AAM, every opcode) and randomized trigger sequences, including ones
that hit error paths and ones where units are deliberately desynchronized.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.bank import Bank, BankConfig
from repro.dram.ecc import EccBank
from repro.dram.timing import HBM2_1GHZ
from repro.pim.assembler import assemble_words
from repro.pim.exec_unit import ColumnTrigger, PimExecutionUnit
from repro.pim.lockstep import LockstepGroup
from repro.pim.registers import LANES

NUM_UNITS = 8
NUM_ROWS = 8
DATA_ROWS = 4  # rows 0..3 hold operand data; register rows are not modelled


def _build_group(seed: int, enabled: bool, bank_cls=Bank) -> LockstepGroup:
    """A seeded group: random bank rows, random GRF/SRF, shared layout."""
    rng = np.random.default_rng(seed)
    cfg = BankConfig(num_rows=NUM_ROWS)
    units = []
    for u in range(NUM_UNITS):
        even = bank_cls(cfg, HBM2_1GHZ)
        odd = bank_cls(cfg, HBM2_1GHZ)
        units.append(PimExecutionUnit(u, even, odd))
    group = LockstepGroup(units, enabled=enabled)
    cols = 8  # triggers only ever address columns 0..7
    for unit in units:
        for bank in (unit.even_bank, unit.odd_bank):
            for row in range(DATA_ROWS):
                for col in range(cols):
                    values = rng.standard_normal(LANES).astype(np.float16)
                    bank.poke(row, col, values.view(np.uint8))
        unit.regs.grf_a[...] = rng.standard_normal(
            unit.regs.grf_a.shape
        ).astype(np.float16)
        unit.regs.grf_b[...] = rng.standard_normal(
            unit.regs.grf_b.shape
        ).astype(np.float16)
        unit.regs.srf_m[...] = rng.standard_normal(
            unit.regs.srf_m.shape
        ).astype(np.float16)
        unit.regs.srf_a[...] = rng.standard_normal(
            unit.regs.srf_a.shape
        ).astype(np.float16)
    return group


def _program(group: LockstepGroup, source: str) -> None:
    words = assemble_words(source)
    for unit in group.units:
        for i, word in enumerate(words):
            unit.regs.crf[i] = word
    group.start_all()


def _snapshot(group: LockstepGroup):
    """Everything observable about the group, as comparable bytes/values."""
    state = []
    for unit in group.units:
        banks = []
        for bank in (unit.even_bank, unit.odd_bank):
            rows = {
                row: bank.peek_raw_row(row).tobytes()
                if hasattr(bank, "peek_raw_row")
                else bank._row_array(row).tobytes()
                for row in sorted(bank._rows)
            }
            checks = (
                {r: a.tobytes() for r, a in sorted(bank._check.items())}
                if isinstance(bank, EccBank)
                else None
            )
            ecc_stats = (
                vars(bank.ecc_stats).copy() if isinstance(bank, EccBank) else None
            )
            banks.append((rows, checks, ecc_stats))
        state.append(
            {
                "banks": banks,
                "crf": list(unit.regs.crf),
                "grf_a": unit.regs.grf_a.tobytes(),
                "grf_b": unit.regs.grf_b.tobytes(),
                "srf_m": unit.regs.srf_m.tobytes(),
                "srf_a": unit.regs.srf_a.tobytes(),
                "ppc": unit.ppc,
                "exited": unit.exited,
                "nop": unit._nop_remaining,
                "jump": dict(unit._jump_state),
                "stats": vars(unit.stats).copy(),
            }
        )
    return state


def _run(group: LockstepGroup, triggers) -> list:
    """Apply the triggers, recording outcomes (None or the exception)."""
    outcomes = []
    for trig in triggers:
        try:
            group.trigger_all(trig)
            outcomes.append(None)
        except Exception as exc:  # compared type-and-message against oracle
            outcomes.append((type(exc).__name__, str(exc)))
    return outcomes


def _assert_equivalent(source: str, triggers, seed: int = 0, bank_cls=Bank,
                       mutate=None) -> None:
    batched = _build_group(seed, enabled=True, bank_cls=bank_cls)
    oracle = _build_group(seed, enabled=False, bank_cls=bank_cls)
    _program(batched, source)
    _program(oracle, source)
    if mutate is not None:
        mutate(batched)
        mutate(oracle)
    out_b = _run(batched, triggers)
    out_o = _run(oracle, triggers)
    assert out_b == out_o
    assert _snapshot(batched) == _snapshot(oracle)
    assert batched.scalar_fallbacks + batched.batched_triggers >= 0  # counters exist


def _rd(row=0, col=0):
    return ColumnTrigger(is_write=False, row=row, col=col)


def _wr(row=0, col=0, value=1.0):
    data = np.full(LANES, value, dtype=np.float16).view(np.uint8)
    return ColumnTrigger(is_write=True, row=row, col=col, host_data=data)


# -- hand-written microkernels covering each structural feature ---------------------


class TestMicrokernels:
    def test_gemv_style_mac_loop(self):
        source = (
            "MAC GRF_B[A], EVEN_BANK, SRF_M[A]\n"
            "JUMP -1, 7\n"
            "EXIT"
        )
        triggers = [_rd(row=0, col=c) for c in range(8)] + [_rd(0, 0)]
        _assert_equivalent(source, triggers)

    def test_elementwise_add_with_bank_writeback(self):
        source = (
            "FILL GRF_A[0], EVEN_BANK\n"
            "ADD GRF_A[1], GRF_A[0], ODD_BANK\n"
            "MOV EVEN_BANK, GRF_A[1]\n"
            "EXIT"
        )
        triggers = [_rd(0, 0), _rd(1, 1), _wr(2, 2), _rd(0, 0)]
        _assert_equivalent(source, triggers)

    def test_multi_cycle_nop_and_relu(self):
        source = (
            "NOP 3\n"
            "MOV(RELU) GRF_A[2], GRF_B[3]\n"
            "NOP 2\n"
            "EXIT"
        )
        triggers = [_rd(0, 0)] * 7
        _assert_equivalent(source, triggers)

    def test_mad_with_scalar_operands(self):
        source = (
            "MAD GRF_B[0], ODD_BANK, SRF_M[4], SRF_A[4]\n"
            "MUL GRF_B[1], GRF_B[0], GRF_A[5]\n"
            "EXIT"
        )
        triggers = [_rd(1, 3), _rd(0, 0), _rd(0, 0)]
        _assert_equivalent(source, triggers)

    def test_host_broadcast_write(self):
        source = "MOV GRF_A[A], HOST\nJUMP -1, 3\nEXIT"
        triggers = [_wr(0, c, value=float(c + 1)) for c in range(4)]
        _assert_equivalent(source, triggers)

    def test_surplus_triggers_after_exit(self):
        source = "MOV GRF_A[0], GRF_B[0]\nEXIT"
        triggers = [_rd(0, 0)] * 5
        _assert_equivalent(source, triggers)

    def test_wrong_trigger_kind_raises_identically(self):
        # Bank-read microkernel poked with WR triggers: the scalar loop
        # raises PimProgramError on unit 0; the batch path must fall back
        # and raise the same error with the same partial state.
        source = "FILL GRF_A[0], EVEN_BANK\nEXIT"
        triggers = [_wr(0, 0), _rd(0, 0), _rd(0, 0)]
        _assert_equivalent(source, triggers)

    def test_ecc_banks_identical_counters(self):
        source = (
            "FILL GRF_A[0], EVEN_BANK\n"
            "ADD GRF_A[1], GRF_A[0], ODD_BANK\n"
            "MOV ODD_BANK, GRF_A[1]\n"
            "EXIT"
        )
        triggers = [_rd(0, 0), _rd(1, 1), _wr(2, 2), _rd(3, 3)]
        _assert_equivalent(source, triggers, bank_cls=EccBank)


class TestDesync:
    def test_single_unit_crf_divergence_falls_back(self):
        source = "MOV GRF_A[0], GRF_B[0]\nMOV GRF_A[1], GRF_B[1]\nEXIT"

        def mutate(group):
            # Unit 3 gets a different second instruction (SB-mode rewrite).
            group.units[3].regs.crf[1] = assemble_words(
                "MOV GRF_A[2], GRF_B[2]"
            )[0]

        triggers = [_rd(0, 0), _rd(0, 0), _rd(0, 0)]
        _assert_equivalent(source, triggers, mutate=mutate)

    def test_crf_bit_flip_mid_program(self):
        source = (
            "MOV GRF_A[0], GRF_B[0]\n"
            "MUL GRF_A[1], GRF_A[0], SRF_M[0]\n"
            "EXIT"
        )

        def mutate(group):
            group.units[5].regs.flip_bit("crf", 1, 7)

        triggers = [_rd(0, 0), _rd(0, 0), _rd(0, 0)]
        _assert_equivalent(source, triggers, mutate=mutate)

    def test_divergent_sequencer_state(self):
        source = "NOP 2\nMOV GRF_A[0], GRF_B[0]\nEXIT"

        def mutate(group):
            group.units[2]._nop_remaining = 1  # unit 2 mid-NOP already

        triggers = [_rd(0, 0)] * 4
        _assert_equivalent(source, triggers, mutate=mutate)

    def test_batched_counter_advances_on_clean_run(self):
        group = _build_group(1, enabled=True)
        _program(group, "MOV GRF_A[0], GRF_B[0]\nEXIT")
        group.trigger_all(_rd(0, 0))
        assert group.batched_triggers == 1
        assert group.scalar_fallbacks == 0


# -- randomized microkernels (hypothesis) -------------------------------------------

_INSTRUCTIONS = (
    "FILL GRF_A[{i}], EVEN_BANK",
    "FILL GRF_B[{i}], ODD_BANK",
    "MOV GRF_A[{i}], GRF_B[{j}]",
    "MOV(RELU) GRF_B[{i}], GRF_A[{j}]",
    "MOV GRF_A[A], HOST",
    "MOV EVEN_BANK, GRF_A[{i}]",
    "MOV ODD_BANK, GRF_B[{i}]",
    "MUL GRF_A[{i}], GRF_A[{j}], SRF_M[{k}]",
    "ADD GRF_B[{i}], GRF_B[{j}], SRF_A[{k}]",
    "ADD GRF_A[{i}], GRF_A[{j}], GRF_B[{k}]",
    "MAC GRF_B[A], EVEN_BANK, SRF_M[A]",
    "MAC GRF_A[{i}], GRF_B[{j}], GRF_A[{k}]",
    "MAD GRF_A[{i}], ODD_BANK, SRF_M[{j}], SRF_A[{j}]",  # ISA: SRC1# == SRC2#
    "NOP {n}",
)

_instr = st.builds(
    lambda t, i, j, k, n: t.format(i=i, j=j, k=k, n=n),
    st.sampled_from(_INSTRUCTIONS),
    st.integers(0, 7),
    st.integers(0, 7),
    st.integers(0, 7),
    st.integers(1, 3),
)

_jump = st.builds(
    lambda off, cnt: f"JUMP -{off}, {cnt}",
    st.integers(1, 3),
    st.integers(1, 4),
)

_trigger = st.builds(
    lambda is_write, row, col, value: (
        _wr(row, col, value) if is_write else _rd(row, col)
    ),
    st.booleans(),
    st.integers(0, DATA_ROWS - 1),
    st.integers(0, 7),
    st.floats(-4, 4, width=16),
)


@st.composite
def _microkernel(draw):
    body = draw(st.lists(_instr, min_size=1, max_size=6))
    # Optionally close with a backward JUMP over the tail of the body.
    if draw(st.booleans()):
        jump = draw(_jump)
        offset = int(jump.split()[1].rstrip(","))  # negative
        if len(body) + offset >= 0:  # jump target stays inside the body
            body.append(jump)
    body.append("EXIT")
    return "\n".join(body)


class TestRandomizedDifferential:
    @settings(max_examples=30, deadline=None)
    @given(
        source=_microkernel(),
        triggers=st.lists(_trigger, min_size=1, max_size=24),
        seed=st.integers(0, 2**16),
    )
    def test_batched_equals_scalar(self, source, triggers, seed):
        _assert_equivalent(source, triggers, seed=seed)

    @settings(max_examples=15, deadline=None)
    @given(
        source=_microkernel(),
        triggers=st.lists(_trigger, min_size=1, max_size=12),
        seed=st.integers(0, 2**16),
    )
    def test_batched_equals_scalar_ecc(self, source, triggers, seed):
        _assert_equivalent(source, triggers, seed=seed, bank_cls=EccBank)

    @settings(max_examples=15, deadline=None)
    @given(
        source=_microkernel(),
        triggers=st.lists(_trigger, min_size=1, max_size=12),
        seed=st.integers(0, 2**16),
        unit=st.integers(0, NUM_UNITS - 1),
        entry=st.integers(0, 6),
        bit=st.integers(0, 31),
    )
    def test_batched_equals_scalar_with_crf_fault(
        self, source, triggers, seed, unit, entry, bit
    ):
        def mutate(group):
            group.units[unit].regs.flip_bit("crf", entry, bit)

        _assert_equivalent(source, triggers, seed=seed, mutate=mutate)


class TestSystemToggle:
    """Every ``SystemConfig(exec_mode=...)`` must be bit-exact with the
    default (lock-step) path end to end."""

    def test_exec_mode_end_to_end_equivalence(self):
        from repro.stack.runtime import PimSystem, SystemConfig

        def run(exec_mode):
            rng = np.random.default_rng(13)
            system = PimSystem(
                SystemConfig.fast_functional(ecc=True, exec_mode=exec_mode)
            )
            w = (rng.standard_normal((48, 64)) * 0.25).astype(np.float16)
            x = (rng.standard_normal(64) * 0.25).astype(np.float16)
            y, _ = system.executor.gemv_operator(w)(x)
            a = (rng.standard_normal(192) * 0.25).astype(np.float16)
            b = (rng.standard_normal(192) * 0.25).astype(np.float16)
            z, _ = system.executor.elementwise("add", a, b)
            pch = system.device.pch(0)
            stats = [vars(u.stats) for u in pch.units]
            ecc = [vars(bank.ecc_stats) for bank in pch.banks]
            grf = [
                unit.regs.grf_a.tobytes() + unit.regs.grf_b.tobytes()
                for unit in pch.units
            ]
            return (
                y.tobytes(), z.tobytes(), stats, ecc, grf,
                pch.lockstep.batched_triggers,
            )

        default = run("lockstep")
        scalar = run("scalar")
        fused = run("fused")
        assert default[:-1] == scalar[:-1] == fused[:-1]
        assert default[-1] > 0  # the batch path actually ran by default
        assert scalar[-1] == 0  # ... and was fully disabled when forced off
        assert fused[-1] >= default[-1]  # fused batches at least as widely
