"""Tests for the PIM execution unit (pipeline semantics, AAM, control)."""

import numpy as np
import pytest

from repro.common.fp16 import vec_relu
from repro.dram.bank import Bank, BankConfig
from repro.dram.timing import HBM2_1GHZ
from repro.pim.assembler import assemble_words
from repro.pim.exec_unit import ColumnTrigger, PimExecutionUnit, PimProgramError
from repro.pim.registers import LANES


@pytest.fixture
def unit():
    cfg = BankConfig(num_rows=16)
    even = Bank(cfg, HBM2_1GHZ)
    odd = Bank(cfg, HBM2_1GHZ)
    return PimExecutionUnit(0, even, odd)


def program(unit, source):
    for i, word in enumerate(assemble_words(source)):
        unit.regs.crf[i] = word
    unit.start()


def rd(row=0, col=0):
    return ColumnTrigger(is_write=False, row=row, col=col)


def wr(row=0, col=0, data=None):
    if data is None:
        data = np.zeros(32, dtype=np.uint8)
    return ColumnTrigger(is_write=True, row=row, col=col, host_data=data)


def lanes(value):
    return np.full(LANES, value, dtype=np.float16)


def bank_col(values):
    return np.asarray(values, dtype=np.float16).view(np.uint8)


class TestDataMovement:
    def test_fill_loads_bank_into_grf(self, unit):
        unit.even_bank.poke(2, 5, bank_col(lanes(3.0)))
        program(unit, "FILL GRF_A[4], EVEN_BANK\nEXIT")
        unit.trigger(rd(row=2, col=5))
        assert (unit.regs.grf_a[4] == np.float16(3.0)).all()

    def test_fill_from_odd_bank(self, unit):
        unit.odd_bank.poke(1, 0, bank_col(lanes(-2.0)))
        program(unit, "FILL GRF_B[0], ODD_BANK\nEXIT")
        unit.trigger(rd(row=1, col=0))
        assert (unit.regs.grf_b[0] == np.float16(-2.0)).all()

    def test_mov_host_data_to_grf(self, unit):
        program(unit, "MOV GRF_A[1], HOST\nEXIT")
        unit.trigger(wr(data=bank_col(lanes(7.5))))
        assert (unit.regs.grf_a[1] == np.float16(7.5)).all()

    def test_mov_grf_to_bank_via_write_trigger(self, unit):
        unit.regs.grf_b[2][:] = np.float16(1.25)
        program(unit, "MOV EVEN_BANK, GRF_B[2]\nEXIT")
        unit.trigger(wr(row=3, col=7))
        stored = unit.even_bank.peek(3, 7).view(np.float16)
        assert (stored == np.float16(1.25)).all()

    def test_mov_grf_to_grf(self, unit):
        unit.regs.grf_a[0][:] = np.float16(4.0)
        program(unit, "MOV GRF_B[3], GRF_A[0]\nEXIT")
        unit.trigger(rd())
        assert (unit.regs.grf_b[3] == np.float16(4.0)).all()

    def test_mov_srf_to_grf_broadcast(self, unit):
        unit.regs.srf_a[2] = np.float16(-0.5)
        program(unit, "MOV GRF_B[0], SRF_A[2]\nEXIT")
        unit.trigger(rd())
        assert (unit.regs.grf_b[0] == np.float16(-0.5)).all()

    def test_mov_relu_zeroes_negatives(self, unit):
        values = np.array([1.0, -1.0] * 8, dtype=np.float16)
        unit.regs.grf_a[0][:] = values
        program(unit, "MOV(RELU) GRF_B[0], GRF_A[0]\nEXIT")
        unit.trigger(rd())
        assert np.array_equal(unit.regs.grf_b[0], vec_relu(values))


class TestTriggerKindConstraints:
    def test_bank_source_requires_read(self, unit):
        program(unit, "FILL GRF_A[0], EVEN_BANK\nEXIT")
        with pytest.raises(PimProgramError):
            unit.trigger(wr())

    def test_bank_dest_requires_write(self, unit):
        program(unit, "MOV EVEN_BANK, GRF_A[0]\nEXIT")
        with pytest.raises(PimProgramError):
            unit.trigger(rd())

    def test_host_source_requires_write(self, unit):
        program(unit, "MOV GRF_A[0], HOST\nEXIT")
        with pytest.raises(PimProgramError):
            unit.trigger(rd())


class TestArithmetic:
    def test_add(self, unit):
        unit.regs.grf_a[0][:] = lanes(1.5)
        unit.regs.grf_b[1][:] = lanes(2.0)
        program(unit, "ADD GRF_A[2], GRF_A[0], GRF_B[1]\nEXIT")
        unit.trigger(rd())
        assert (unit.regs.grf_a[2] == np.float16(3.5)).all()

    def test_mul_with_bank_operand(self, unit):
        unit.even_bank.poke(0, 0, bank_col(lanes(3.0)))
        unit.regs.grf_a[0][:] = lanes(2.0)
        program(unit, "MUL GRF_B[0], EVEN_BANK, GRF_A[0]\nEXIT")
        unit.trigger(rd(0, 0))
        assert (unit.regs.grf_b[0] == np.float16(6.0)).all()

    def test_mul_with_srf_scalar(self, unit):
        unit.regs.srf_m[3] = np.float16(0.5)
        unit.regs.grf_a[1][:] = lanes(8.0)
        program(unit, "MUL GRF_A[0], GRF_A[1], SRF_M[3]\nEXIT")
        unit.trigger(rd())
        assert (unit.regs.grf_a[0] == np.float16(4.0)).all()

    def test_mac_accumulates_into_dst(self, unit):
        unit.regs.grf_b[0][:] = lanes(1.0)
        unit.regs.grf_a[0][:] = lanes(2.0)
        unit.even_bank.poke(0, 0, bank_col(lanes(3.0)))
        program(unit, "MAC GRF_B[0], EVEN_BANK, GRF_A[0]\nEXIT")
        unit.trigger(rd(0, 0))
        assert (unit.regs.grf_b[0] == np.float16(7.0)).all()

    def test_mad(self, unit):
        unit.regs.srf_m[1] = np.float16(2.0)
        unit.regs.srf_a[1] = np.float16(-1.0)
        unit.even_bank.poke(0, 4, bank_col(lanes(5.0)))
        program(unit, "MAD GRF_A[0], EVEN_BANK, SRF_M[1], SRF_A[1]\nEXIT")
        unit.trigger(rd(0, 4))
        assert (unit.regs.grf_a[0] == np.float16(9.0)).all()

    def test_fp16_rounding_semantics(self, unit):
        # 2049 is not representable in FP16; RNE rounds to 2048.
        unit.regs.grf_a[0][:] = lanes(2048.0)
        unit.regs.grf_b[0][:] = lanes(1.0)
        program(unit, "ADD GRF_A[1], GRF_A[0], GRF_B[0]\nEXIT")
        unit.trigger(rd())
        assert (unit.regs.grf_a[1] == np.float16(2048.0)).all()

    def test_flop_accounting(self, unit):
        unit.regs.grf_a[0][:] = lanes(1.0)
        program(unit, "MAC GRF_B[0], GRF_A[0], GRF_A[0]\nEXIT")
        unit.trigger(rd())
        assert unit.stats.flops == 2 * LANES


class TestAddressAlignedMode:
    def test_aam_index_from_column(self, unit):
        for col in range(8):
            unit.even_bank.poke(0, col, bank_col(lanes(float(col))))
        program(unit, "FILL GRF_A[A], EVEN_BANK\nJUMP -1, 7\nEXIT")
        for col in [3, 1, 7, 0, 6, 2, 5, 4]:  # arbitrary order
            unit.trigger(rd(0, col))
        for reg in range(8):
            assert (unit.regs.grf_a[reg] == np.float16(reg)).all()

    def test_aam_wraps_modulo_8(self, unit):
        unit.even_bank.poke(0, 9, bank_col(lanes(9.0)))
        program(unit, "FILL GRF_A[A], EVEN_BANK\nEXIT")
        unit.trigger(rd(0, 9))
        assert (unit.regs.grf_a[1] == np.float16(9.0)).all()

    def test_non_aam_ignores_column(self, unit):
        unit.even_bank.poke(0, 5, bank_col(lanes(5.0)))
        program(unit, "FILL GRF_A[2], EVEN_BANK\nEXIT")
        unit.trigger(rd(0, 5))
        assert (unit.regs.grf_a[2] == np.float16(5.0)).all()
        assert unit.regs.grf_a[5].sum() == 0


class TestControlFlow:
    def test_zero_cycle_jump_loop(self, unit):
        unit.regs.grf_a[0][:] = lanes(1.0)
        unit.regs.grf_b[0][:] = lanes(0.0)
        program(unit, "ADD GRF_B[0], GRF_B[0], GRF_A[0]\nJUMP -1, 4\nEXIT")
        for _ in range(5):  # 1 initial + 4 repeats, JUMP consumes nothing
            unit.trigger(rd())
        assert (unit.regs.grf_b[0] == np.float16(5.0)).all()
        assert unit.exited

    def test_nested_loop_rearms(self, unit):
        # Inner loop of 2, outer loop of 3: instruction runs 6 times.
        unit.regs.grf_a[0][:] = lanes(1.0)
        program(
            unit,
            "ADD GRF_B[0], GRF_B[0], GRF_A[0]\nJUMP -1, 1\nJUMP -2, 2\nEXIT",
        )
        for _ in range(6):
            unit.trigger(rd())
        assert (unit.regs.grf_b[0] == np.float16(6.0)).all()
        assert unit.exited

    def test_jump_zero_iterations_falls_through(self, unit):
        program(unit, "NOP\nJUMP -1, 0\nEXIT")
        unit.trigger(rd())
        assert unit.exited

    def test_multi_cycle_nop(self, unit):
        program(unit, "NOP 3\nMOV GRF_A[0], GRF_B[0]\nEXIT")
        for _ in range(3):
            unit.trigger(rd())
        assert not unit.exited
        unit.trigger(rd())
        assert unit.exited
        assert unit.stats.instructions == 4

    def test_triggers_after_exit_are_ignored(self, unit):
        program(unit, "EXIT")
        unit.trigger(rd())
        unit.trigger(rd())
        assert unit.stats.ignored_after_exit == 2
        assert unit.stats.instructions == 0

    def test_start_resets_state(self, unit):
        program(unit, "MOV GRF_A[0], GRF_B[0]\nJUMP -1, 2\nEXIT")
        for _ in range(3):
            unit.trigger(rd())
        assert unit.exited
        unit.start()
        assert not unit.exited
        assert unit.ppc == 0

    def test_not_started_unit_ignores_triggers(self, unit):
        unit.regs.crf[0] = assemble_words("EXIT")[0]
        unit.trigger(rd())
        assert unit.stats.ignored_after_exit == 1

    def test_runaway_jump_detected(self, unit):
        # Nested re-arming jumps whose product of iteration counts is
        # astronomically large: the resolver's convergence guard must fire
        # instead of spinning for ~1.7e10 steps.
        with pytest.raises(PimProgramError):
            program(
                unit,
                "JUMP 1, 1\nJUMP -1, 131071\nJUMP -2, 131071\nEXIT",
            )
            unit.trigger(rd())

    def test_ppc_out_of_range(self, unit):
        # A CRF full of single NOPs with no EXIT: PPC walks off the end.
        for i in range(32):
            unit.regs.crf[i] = assemble_words("NOP")[0]
        unit.start()
        with pytest.raises(PimProgramError):
            for _ in range(33):
                unit.trigger(rd())


class TestStats:
    def test_bank_access_counters(self, unit):
        unit.even_bank.poke(0, 0, bank_col(lanes(1.0)))
        program(unit, "FILL GRF_A[0], EVEN_BANK\nMOV ODD_BANK, GRF_A[0]\nEXIT")
        unit.trigger(rd(0, 0))
        unit.trigger(wr(0, 1))
        assert unit.stats.bank_reads == 1
        assert unit.stats.bank_writes == 1
        assert unit.stats.triggers == 2
