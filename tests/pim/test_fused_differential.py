"""Three-way differential: trace-compiled fused vs lock-step vs scalar.

The fused executor (:mod:`repro.pim.fused`) must be *indistinguishable*
from both always-available oracles — the lock-step interpreter and the
per-unit scalar loop — wherever results are observable: bit-identical
register/bank bytes, identical ``UnitStats`` and ECC counters, identical
profile counters, and identical span trees (``diff_span_trees`` names the
first divergence on failure), across hand-written and randomized
microkernels, random shapes and channel subsets, and under injected CRF
faults and shed overload.

The one deliberate exception is exception *surfacing*: the fused group
defers triggers within an AB-PIM window, so an error the interpreter
raises at trigger N surfaces at the window flush instead (documented in
:mod:`repro.pim.fused`).  Error-path cases therefore compare the first
raised exception and stop — both post-error states are garbage the
self-healing layer discards.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.bank import Bank
from repro.dram.ecc import EccBank
from repro.pim.fused import FusedLockstepGroup, TraceCache
from repro.pim.lockstep import LockstepGroup

from tests.pim.test_lockstep import (
    NUM_UNITS,
    _build_group,
    _microkernel,
    _program,
    _rd,
    _snapshot,
    _trigger,
    _wr,
)


def _build_fused(seed: int, bank_cls=Bank) -> FusedLockstepGroup:
    base = _build_group(seed, enabled=True, bank_cls=bank_cls)
    return FusedLockstepGroup(base.units)


def _run_window(group, triggers):
    """One AB-PIM window: all triggers, then the flush the device issues
    at the window boundary.  Returns the first exception (type, message)
    or None — for eager groups an exception aborts the window exactly as
    a device drain would."""
    try:
        for trig in triggers:
            group.trigger_all(trig)
        group.flush_pending()
        return None
    except Exception as exc:
        return (type(exc).__name__, str(exc))


def _assert_threeway(source, triggers, seed=0, bank_cls=Bank, mutate=None):
    groups = {
        "scalar": _build_group(seed, enabled=False, bank_cls=bank_cls),
        "lockstep": _build_group(seed, enabled=True, bank_cls=bank_cls),
        "fused": _build_fused(seed, bank_cls=bank_cls),
    }
    outcomes = {}
    for name, group in groups.items():
        _program(group, source)
        if mutate is not None:
            mutate(group)
        outcomes[name] = _run_window(group, triggers)
    assert outcomes["scalar"] == outcomes["lockstep"] == outcomes["fused"]
    if outcomes["scalar"] is not None:
        return  # post-error state is documented as unspecified
    snap = _snapshot(groups["scalar"])
    assert _snapshot(groups["lockstep"]) == snap, "lockstep diverged from scalar"
    assert _snapshot(groups["fused"]) == snap, "fused diverged from scalar"


# -- hand-written windows covering each structural feature ----------------------


class TestFusedMicrokernels:
    def test_gemv_style_mac_loop_replays_fused(self):
        source = "MAC GRF_B[A], EVEN_BANK, SRF_M[A]\nJUMP -1, 7\nEXIT"
        triggers = [_rd(row=0, col=c) for c in range(8)]
        _assert_threeway(source, triggers)

    def test_grouped_elementwise_chain(self):
        source = (
            "FILL GRF_A[A], EVEN_BANK\n"
            "JUMP -1, 7\n"
            "ADD GRF_B[A], GRF_A[A], ODD_BANK\n"
            "JUMP -1, 7\n"
            "MOV EVEN_BANK, GRF_B[A]\n"
            "JUMP -1, 7\n"
            "EXIT"
        )
        triggers = (
            [_rd(1, c) for c in range(8)]
            + [_rd(2, c) for c in range(8)]
            + [_wr(3, c) for c in range(8)]
        )
        _assert_threeway(source, triggers)

    def test_interleaved_stages_self_split(self):
        # The PR 5 elementwise order: FILL/ADD/MOV triples interleave, so
        # every group is a singleton — still bit-exact, just unfused.
        source = (
            "FILL GRF_A[0], EVEN_BANK\n"
            "ADD GRF_A[1], GRF_A[0], ODD_BANK\n"
            "MOV EVEN_BANK, GRF_A[1]\n"
            "JUMP -3, 3\n"
            "EXIT"
        )
        triggers = []
        for col in range(4):
            triggers += [_rd(1, col), _rd(2, col), _wr(3, col)]
        _assert_threeway(source, triggers)

    def test_fixed_register_mac_accumulates_sequentially(self):
        # Non-AAM MAC: every trigger reads and writes GRF_B[0], so the
        # hazard rule must split the run into singletons (fused grouping
        # would break sequential FP16 accumulation).
        source = "MAC GRF_B[0], EVEN_BANK, SRF_M[0]\nJUMP -1, 7\nEXIT"
        triggers = [_rd(0, c) for c in range(8)]
        _assert_threeway(source, triggers)

    def test_host_broadcast_and_relu(self):
        source = (
            "MOV GRF_A[A], HOST\n"
            "JUMP -1, 3\n"
            "MOV(RELU) GRF_B[A], GRF_A[A]\n"
            "JUMP -1, 3\n"
            "EXIT"
        )
        triggers = [_wr(0, c, value=float(c) - 1.5) for c in range(4)] + [
            _rd(0, c) for c in range(4)
        ]
        _assert_threeway(source, triggers)

    def test_multi_cycle_nop_inside_window(self):
        source = "NOP 3\nMOV GRF_A[2], GRF_B[3]\nNOP 2\nEXIT"
        _assert_threeway(source, [_rd(0, 0)] * 7)

    def test_surplus_triggers_after_exit(self):
        source = "MOV GRF_A[0], GRF_B[0]\nEXIT"
        _assert_threeway(source, [_rd(0, 0)] * 5)

    def test_wrong_trigger_kind_raises_identically(self):
        # WR trigger against a bank-read program: the tape compiles
        # poisoned and the interpreted fallback raises the scalar loop's
        # exact PimProgramError.
        source = "FILL GRF_A[0], EVEN_BANK\nEXIT"
        _assert_threeway(source, [_wr(0, 0)])

    def test_ecc_banks_identical_counters(self):
        source = (
            "FILL GRF_A[A], EVEN_BANK\n"
            "JUMP -1, 7\n"
            "MOV ODD_BANK, GRF_A[A]\n"
            "JUMP -1, 7\n"
            "EXIT"
        )
        triggers = [_rd(0, c) for c in range(8)] + [_wr(1, c) for c in range(8)]
        _assert_threeway(source, triggers, bank_cls=EccBank)

    def test_repeated_windows_hit_the_cache(self):
        group = _build_fused(3)
        _program(group, "MAC GRF_B[A], EVEN_BANK, SRF_M[A]\nJUMP -1, 7\nEXIT")
        for _ in range(4):
            for col in range(8):
                group.trigger_all(_rd(0, col))
            group.flush_pending()
            group.start_all()
        stats = group.cache.stats
        assert stats.compiles == 1
        assert stats.hits == 3
        assert group.fused_replays == 4
        assert group.fused_fallbacks == 0


class TestFusedDesync:
    def test_single_unit_crf_divergence_falls_back(self):
        from repro.pim.assembler import assemble_words

        source = "MOV GRF_A[0], GRF_B[0]\nMOV GRF_A[1], GRF_B[1]\nEXIT"

        def mutate(group):
            group.units[3].regs.crf[1] = assemble_words(
                "MOV GRF_A[2], GRF_B[2]"
            )[0]

        _assert_threeway(source, [_rd(0, 0)] * 3, mutate=mutate)

    def test_crf_bit_flip_changes_the_cache_key(self):
        source = "MOV GRF_A[0], GRF_B[0]\nEXIT"
        group = _build_fused(5)
        _program(group, source)
        group.trigger_all(_rd(0, 0))
        group.flush_pending()
        first_keys = group.cache.keys()
        # A broadcast CRF mutation (all units stay uniform) must compile a
        # fresh trace — never replay the stale program.
        for unit in group.units:
            unit.regs.flip_bit("crf", 0, 9)
        group.start_all()
        group.trigger_all(_rd(0, 0))
        group.flush_pending()
        assert group.cache.stats.compiles == 2
        assert set(group.cache.keys()) != set(first_keys)

    def test_divergent_sequencer_state_falls_back(self):
        source = "NOP 2\nMOV GRF_A[0], GRF_B[0]\nEXIT"

        def mutate(group):
            group.units[2]._nop_remaining = 1

        _assert_threeway(source, [_rd(0, 0)] * 4, mutate=mutate)


# -- randomized three-way differential (hypothesis) -----------------------------


class TestRandomizedThreeWay:
    @settings(max_examples=30, deadline=None)
    @given(
        source=_microkernel(),
        triggers=st.lists(_trigger, min_size=1, max_size=24),
        seed=st.integers(0, 2**16),
    )
    def test_fused_equals_both_oracles(self, source, triggers, seed):
        _assert_threeway(source, triggers, seed=seed)

    @settings(max_examples=15, deadline=None)
    @given(
        source=_microkernel(),
        triggers=st.lists(_trigger, min_size=1, max_size=12),
        seed=st.integers(0, 2**16),
    )
    def test_fused_equals_both_oracles_ecc(self, source, triggers, seed):
        _assert_threeway(source, triggers, seed=seed, bank_cls=EccBank)

    @settings(max_examples=15, deadline=None)
    @given(
        source=_microkernel(),
        triggers=st.lists(_trigger, min_size=1, max_size=12),
        seed=st.integers(0, 2**16),
        unit=st.integers(0, NUM_UNITS - 1),
        entry=st.integers(0, 6),
        bit=st.integers(0, 31),
    )
    def test_fused_equals_oracles_with_crf_fault(
        self, source, triggers, seed, unit, entry, bit
    ):
        def mutate(group):
            group.units[unit].regs.flip_bit("crf", entry, bit)

        _assert_threeway(source, triggers, seed=seed, mutate=mutate)

    @settings(max_examples=10, deadline=None)
    @given(
        source=_microkernel(),
        triggers=st.lists(_trigger, min_size=1, max_size=16),
        seed=st.integers(0, 2**16),
        split=st.integers(1, 15),
    )
    def test_window_split_is_invisible(self, source, triggers, seed, split):
        """Flushing mid-stream (a register access landing mid-window) must
        not change any observable state versus one unbroken window."""
        whole = _build_fused(seed)
        parts = _build_fused(seed)
        _program(whole, source)
        _program(parts, source)

        def run_split(group):
            for trig in triggers[:split]:
                group.trigger_all(trig)
            group.flush_pending()
            for trig in triggers[split:]:
                group.trigger_all(trig)
            group.flush_pending()
            return None

        def run_whole(group):
            for trig in triggers:
                group.trigger_all(trig)
            group.flush_pending()
            return None

        exc_w = exc_p = None
        try:
            run_whole(whole)
        except Exception as exc:
            exc_w = (type(exc).__name__, str(exc))
        try:
            run_split(parts)
        except Exception as exc:
            exc_p = (type(exc).__name__, str(exc))
        assert exc_w == exc_p
        if exc_w is None:
            assert _snapshot(whole) == _snapshot(parts)


# -- end-to-end: ops x shapes x channel subsets x exec modes --------------------


def _system(mode, **overrides):
    from repro.stack.runtime import PimSystem, SystemConfig

    return PimSystem(
        SystemConfig.fast_functional(ecc=True, exec_mode=mode, **overrides)
    )


def _run_op_suite(mode, trace=False):
    """gemv/add/mul/relu/bn/lstm_cell across shapes and channel subsets."""
    from repro.stack.blas import PimBlas

    system = _system(mode, trace=trace)
    blas = PimBlas(system)
    rng = np.random.default_rng(99)
    out = []
    for m, n in ((24, 32), (48, 64)):
        w = (rng.standard_normal((m, n)) * 0.25).astype(np.float16)
        x = (rng.standard_normal(n) * 0.25).astype(np.float16)
        y, _ = blas.gemv(w, x)
        out.append(y.tobytes())
    for length in (96, 192):
        a = (rng.standard_normal(length) * 0.25).astype(np.float16)
        b = (rng.standard_normal(length) * 0.25).astype(np.float16)
        out.append(blas.add(a, b)[0].tobytes())
        out.append(blas.mul(a, b)[0].tobytes())
        out.append(blas.relu(a)[0].tobytes())
        out.append(blas.bn(a, 1.5, -0.25)[0].tobytes())
    # Channel subsets: the same operator pinned to different channels.
    for channels in ((0,), (1, 2)):
        kern = system.executor.elementwise_operator(
            "add", 96, channels=channels
        )
        a = (rng.standard_normal(96) * 0.25).astype(np.float16)
        b = (rng.standard_normal(96) * 0.25).astype(np.float16)
        out.append(kern(a, b)[0].tobytes())
    # LSTM cell: two PIM GEMVs + host nonlinearities.
    h_dim, x_dim = 16, 24
    w_ih = (rng.standard_normal((4 * h_dim, x_dim)) * 0.2).astype(np.float16)
    w_hh = (rng.standard_normal((4 * h_dim, h_dim)) * 0.2).astype(np.float16)
    bias = (rng.standard_normal(4 * h_dim) * 0.2).astype(np.float16)
    xv = (rng.standard_normal(x_dim) * 0.2).astype(np.float16)
    hv = (rng.standard_normal(h_dim) * 0.2).astype(np.float16)
    cv = (rng.standard_normal(h_dim) * 0.2).astype(np.float16)
    h1, c1 = blas.lstm_cell(w_ih, w_hh, bias, xv, hv, cv)[:2]
    out.append(h1.tobytes())
    out.append(c1.tobytes())
    unit_stats = [
        vars(u.stats).copy() for ch in system.device.pchs for u in ch.units
    ]
    ecc_stats = [
        vars(bk.ecc_stats).copy() for ch in system.device.pchs for bk in ch.banks
    ]
    counters = system.metrics.render() if trace else None
    return out, unit_stats, ecc_stats, counters, system


class TestEndToEndThreeWay:
    def test_ops_bit_exact_across_modes(self):
        results = {m: _run_op_suite(m) for m in ("scalar", "lockstep", "fused")}
        base = results["lockstep"]
        for mode in ("scalar", "fused"):
            got = results[mode]
            assert got[0] == base[0], f"{mode} results diverged"
            assert got[1] == base[1], f"{mode} unit stats diverged"
            assert got[2] == base[2], f"{mode} ecc stats diverged"
        fused_system = results["fused"][4]
        assert sum(
            ch.lockstep.fused_replays for ch in fused_system.device.pchs
        ) > 0

    def test_profile_counters_and_span_trees_identical(self):
        from repro.obs.export import diff_span_trees

        base = _run_op_suite("lockstep", trace=True)
        fused = _run_op_suite("fused", trace=True)
        scalar = _run_op_suite("scalar", trace=True)
        assert fused[3] == base[3], "fused metrics counters diverged"
        assert scalar[3] == base[3], "scalar metrics counters diverged"
        diff = diff_span_trees(base[4].tracer, fused[4].tracer)
        assert diff is None, f"fused span tree diverged: {diff}"
        diff = diff_span_trees(base[4].tracer, scalar[4].tracer)
        assert diff is None, f"scalar span tree diverged: {diff}"

    def test_shed_overload_bit_exact(self):
        """Fused must stay bit-exact when the server sheds load mid-run."""
        from repro.stack.api import Request, ServerConfig
        from repro.stack.runtime import PimSystem, SystemConfig
        from repro.stack.server import PimServer

        def run(mode):
            system = PimSystem(
                SystemConfig(
                    num_pchs=4, num_rows=256, simulate_pchs=1, exec_mode=mode
                )
            )
            rng = np.random.default_rng(17)
            a = (rng.standard_normal(128) * 0.25).astype(np.float16)
            b = (rng.standard_normal(128) * 0.25).astype(np.float16)
            cfg = ServerConfig(
                lanes=1, max_batch=4, queue_depth=2, admission="shed"
            )
            with PimServer(system, cfg) as srv:
                handles = [
                    srv.submit(Request("add", a=a, b=b, arrival_ns=0.0))
                    for _ in range(6)
                ]
                profile = srv.run()
            outcomes = [h.outcome for h in handles]
            results = [
                h.result.tobytes() for h in handles if h.result is not None
            ]
            return outcomes, results, profile.rejected

        base = run("lockstep")
        fused = run("fused")
        assert fused[0] == base[0], "outcomes diverged under shed overload"
        assert fused[1] == base[1], "results diverged under shed overload"
        assert base[2] > 0 and fused[2] == base[2]  # shed path engaged

    def test_mixed_scalar_exec_and_exec_mode_raises(self):
        from repro.stack.runtime import SystemConfig

        import pytest

        with pytest.raises(TypeError, match="MIGRATION"):
            SystemConfig(scalar_exec=True, exec_mode="fused")

    def test_scalar_exec_shim_maps_and_warns(self):
        from repro.stack.runtime import SystemConfig

        import pytest

        with pytest.warns(DeprecationWarning, match="scalar_exec"):
            cfg = SystemConfig(scalar_exec=True)
        assert cfg.execution_mode == "scalar"
        with pytest.warns(DeprecationWarning):
            cfg = SystemConfig(scalar_exec=False)
        assert cfg.execution_mode == "lockstep"

    def test_unknown_exec_mode_rejected(self):
        from repro.stack.runtime import SystemConfig

        import pytest

        with pytest.raises(ValueError, match="exec_mode"):
            SystemConfig(exec_mode="warp")
