"""Tests for the BFLOAT16 execution-unit variant (Table I alternative).

The paper weighed BF16 against FP16 (Table I) and chose FP16 for software
compatibility.  The parameterised execution unit lets us run microkernels
with BF16 lanes and observe the trade the paper describes: wider dynamic
range, fewer significand bits.
"""

import numpy as np
import pytest

from repro.common.fp16 import BF16, FP16, decode_format, encode_format, fp_mac
from repro.dram.bank import Bank, BankConfig
from repro.dram.timing import HBM2_1GHZ
from repro.pim.assembler import assemble_words
from repro.pim.exec_unit import ColumnTrigger, PimExecutionUnit
from repro.pim.registers import LANES


def make_unit(fmt):
    cfg = BankConfig(num_rows=16)
    return PimExecutionUnit(
        0, Bank(cfg, HBM2_1GHZ), Bank(cfg, HBM2_1GHZ), lane_format=fmt
    )


def program(unit, source):
    for i, word in enumerate(assemble_words(source)):
        unit.regs.crf[i] = word
    unit.start()


def rd(row=0, col=0):
    return ColumnTrigger(is_write=False, row=row, col=col)


class TestFormatHelpers:
    def test_encode_decode_roundtrip_bf16(self):
        values = np.array([1.0, -2.5, 1e20, 1e-20, 0.0])
        lanes = encode_format(BF16, values)
        back = decode_format(BF16, lanes)
        for v, b in zip(values, back):
            assert b == BF16.round(v)

    def test_fp16_fast_path_identical(self):
        from repro.common.fp16 import format_vec_mul, vec_mul

        rng = np.random.default_rng(0)
        a = rng.standard_normal(16).astype(np.float16)
        b = rng.standard_normal(16).astype(np.float16)
        assert np.array_equal(format_vec_mul(FP16, a, b), vec_mul(a, b))


class TestBf16Execution:
    def test_mac_matches_softfloat(self):
        unit = make_unit(BF16)
        a_vals = np.linspace(-3, 3, LANES)
        b_vals = np.linspace(0.5, 2, LANES)
        acc_vals = np.linspace(-1, 1, LANES)
        unit.regs.grf_a[0] = encode_format(BF16, a_vals)
        unit.regs.grf_b[0] = encode_format(BF16, acc_vals)
        unit.even_bank.poke(0, 0, encode_format(BF16, b_vals).view(np.uint8))
        program(unit, "MAC GRF_B[0], EVEN_BANK, GRF_A[0]\nEXIT")
        unit.trigger(rd(0, 0))
        result_bits = unit.regs.grf_b[0].view(np.uint16)
        for lane in range(LANES):
            expected = fp_mac(
                BF16,
                BF16.to_bits(BF16.round(acc_vals[lane])),
                BF16.to_bits(BF16.round(b_vals[lane])),
                BF16.to_bits(BF16.round(a_vals[lane])),
            )
            assert int(result_bits[lane]) == expected, lane

    def test_bf16_survives_fp16_overflow(self):
        """BF16's FP32-sized exponent handles magnitudes FP16 cannot —
        the dynamic-range argument of Section III-C."""
        big = 100000.0  # > FP16 max (65504)
        results = {}
        for fmt in (FP16, BF16):
            unit = make_unit(fmt)
            unit.regs.grf_a[0] = encode_format(fmt, np.full(LANES, big))
            unit.regs.grf_b[0] = encode_format(fmt, np.full(LANES, 1.0))
            program(unit, "MUL GRF_A[1], GRF_A[0], GRF_B[0]\nEXIT")
            unit.trigger(rd())
            results[fmt.name] = decode_format(fmt, unit.regs.grf_a[1])[0]
        assert np.isinf(results["fp16"])
        assert results["bfloat16"] == BF16.round(big)

    def test_fp16_more_precise_than_bf16(self):
        """...and the flip side: FP16 keeps more significand bits."""
        value = 1.0 + 2.0**-9  # representable in FP16, not in BF16
        errors = {}
        for fmt in (FP16, BF16):
            unit = make_unit(fmt)
            unit.regs.grf_a[0] = encode_format(fmt, np.full(LANES, value))
            unit.regs.grf_b[0] = encode_format(fmt, np.full(LANES, 1.0))
            program(unit, "MUL GRF_A[1], GRF_A[0], GRF_B[0]\nEXIT")
            unit.trigger(rd())
            out = decode_format(fmt, unit.regs.grf_a[1])[0]
            errors[fmt.name] = abs(out - value)
        assert errors["fp16"] == 0.0
        assert errors["bfloat16"] > 0.0

    def test_bf16_gemv_slice_accuracy(self):
        """An 8-MAC dot product in both formats vs float64."""
        rng = np.random.default_rng(1)
        w = rng.standard_normal((8, LANES)) * 0.3
        x = rng.standard_normal(8) * 0.3
        gold = (w * x[:, None]).sum(axis=0)
        errs = {}
        for fmt in (FP16, BF16):
            unit = make_unit(fmt)
            for k in range(8):
                unit.even_bank.poke(0, k, encode_format(fmt, w[k]).view(np.uint8))
            unit.regs.grf_b[0] = encode_format(fmt, np.zeros(LANES))
            for k in range(8):
                unit.regs.grf_a[0] = encode_format(fmt, np.full(LANES, x[k]))
                program(unit, "MAC GRF_B[0], EVEN_BANK, GRF_A[0]\nEXIT")
                # Restore accumulator clobbered by reprogramming? No: CRF
                # programming does not touch GRF, and start() only resets
                # the sequencer.
                unit.trigger(rd(0, k))
            out = decode_format(fmt, unit.regs.grf_b[0])
            errs[fmt.name] = np.abs(out - gold).max()
        # Both land near the truth; FP16 is tighter at this magnitude.
        assert errs["fp16"] < 0.01
        assert errs["bfloat16"] < 0.05
        assert errs["fp16"] < errs["bfloat16"]


class TestDeviceIntegration:
    def test_bf16_channel(self):
        from repro.pim.device import PimPseudoChannel

        channel = PimPseudoChannel(
            HBM2_1GHZ, BankConfig(num_rows=32), lane_format=BF16
        )
        assert all(u.lane_format is BF16 for u in channel.units)
