"""Tests for the mode FSM and PIM_CONF memory map."""

import pytest

from repro.pim.modes import ModeController, PimMemoryMap, PimMode


@pytest.fixture
def mm():
    return PimMemoryMap(num_rows=256)


@pytest.fixture
def fsm(mm):
    return ModeController(mm)


class TestMemoryMap:
    def test_reserved_rows_at_top(self, mm):
        assert mm.abmr_row == 255
        assert mm.sbmr_row == 254
        assert mm.conf_row == 253
        assert mm.crf_row == 252
        assert mm.grf_row == 251
        assert mm.srf_row == 250
        assert mm.first_reserved_row == 250

    def test_is_reserved(self, mm):
        assert mm.is_reserved(250)
        assert mm.is_reserved(255)
        assert not mm.is_reserved(249)

    def test_register_rows(self, mm):
        for row in (mm.conf_row, mm.crf_row, mm.grf_row, mm.srf_row):
            assert mm.is_register_row(row)
        # The transition rows are not column-register rows.
        assert not mm.is_register_row(mm.abmr_row)
        assert not mm.is_register_row(mm.sbmr_row)
        assert not mm.is_register_row(0)


class TestTransitions:
    def test_starts_in_sb(self, fsm):
        assert fsm.mode is PimMode.SB
        assert not fsm.all_bank

    def test_enter_ab_via_act_pre(self, fsm, mm):
        fsm.observe_act(mm.abmr_row)
        assert fsm.observe_pre()
        assert fsm.mode is PimMode.AB
        assert fsm.all_bank

    def test_act_to_normal_row_disarms(self, fsm, mm):
        fsm.observe_act(mm.abmr_row)
        fsm.observe_act(5)  # another ACT in between cancels the sequence
        assert not fsm.observe_pre()
        assert fsm.mode is PimMode.SB

    def test_exit_via_sbmr(self, fsm, mm):
        fsm.observe_act(mm.abmr_row)
        fsm.observe_pre()
        fsm.observe_act(mm.sbmr_row)
        assert fsm.observe_pre()
        assert fsm.mode is PimMode.SB

    def test_sbmr_in_sb_mode_is_noop(self, fsm, mm):
        fsm.observe_act(mm.sbmr_row)
        assert not fsm.observe_pre()
        assert fsm.mode is PimMode.SB

    def test_pim_op_mode_requires_ab(self, fsm):
        assert not fsm.set_pim_op_mode(True)
        assert fsm.mode is PimMode.SB

    def test_enter_and_exit_ab_pim(self, fsm, mm):
        fsm.observe_act(mm.abmr_row)
        fsm.observe_pre()
        assert fsm.set_pim_op_mode(True)
        assert fsm.mode is PimMode.AB_PIM
        assert fsm.pim_executing
        assert fsm.set_pim_op_mode(False)
        assert fsm.mode is PimMode.AB

    def test_redundant_op_mode_writes(self, fsm, mm):
        fsm.observe_act(mm.abmr_row)
        fsm.observe_pre()
        fsm.set_pim_op_mode(True)
        assert not fsm.set_pim_op_mode(True)  # already in AB-PIM

    def test_sbmr_exits_even_from_ab_pim(self, fsm, mm):
        fsm.observe_act(mm.abmr_row)
        fsm.observe_pre()
        fsm.set_pim_op_mode(True)
        fsm.observe_act(mm.sbmr_row)
        assert fsm.observe_pre()
        assert fsm.mode is PimMode.SB

    def test_transition_count(self, fsm, mm):
        fsm.observe_act(mm.abmr_row)
        fsm.observe_pre()
        fsm.set_pim_op_mode(True)
        fsm.set_pim_op_mode(False)
        assert fsm.transition_count == 3
