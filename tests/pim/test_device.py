"""Tests for the PIM pseudo-channel / device (broadcast, registers, modes)."""

import numpy as np
import pytest

from repro.dram.bank import BankConfig
from repro.dram.commands import Command, CommandType
from repro.dram.device import DeviceConfig
from repro.dram.timing import HBM2_1GHZ
from repro.pim.assembler import assemble_words
from repro.pim.device import UNITS_PER_PCH, PimHbmDevice, PimPseudoChannel
from repro.pim.modes import PimMode


@pytest.fixture
def ch():
    return PimPseudoChannel(HBM2_1GHZ, BankConfig(num_rows=64))


class Driver:
    """A minimal in-order command driver for device-level tests."""

    def __init__(self, ch):
        self.ch = ch
        self.cycle = 0

    def issue(self, cmd):
        self.cycle = max(self.cycle, self.ch.earliest_issue(cmd))
        result = self.ch.issue(cmd, self.cycle)
        self.cycle += 1
        return result

    def enter_ab(self):
        self.issue(Command(CommandType.ACT, 0, 0, row=self.ch.memory_map.abmr_row))
        self.issue(Command(CommandType.PRE, 0, 0))

    def enter_ab_pim(self):
        data = np.zeros(32, dtype=np.uint8)
        data[0] = 1
        self.issue(
            Command(CommandType.WR, 0, 0, row=self.ch.memory_map.conf_row,
                    col=0, data=data)
        )

    def exit_ab_pim(self):
        self.issue(
            Command(CommandType.WR, 0, 0, row=self.ch.memory_map.conf_row,
                    col=0, data=np.zeros(32, dtype=np.uint8))
        )


def wr(bg, ba, row, col, value=0):
    return Command(
        CommandType.WR, bg, ba, row=row, col=col,
        data=np.full(32, value, dtype=np.uint8),
    )


class TestStructure:
    def test_eight_units_per_pch(self, ch):
        assert len(ch.units) == UNITS_PER_PCH == 8

    def test_unit_bank_pairing(self, ch):
        for u, unit in enumerate(ch.units):
            assert unit.even_bank is ch.banks[2 * u]
            assert unit.odd_bank is ch.banks[2 * u + 1]

    def test_device_compute_bandwidth(self):
        device = PimHbmDevice(DeviceConfig(timing=HBM2_1GHZ.scaled_to(1.2)))
        # Table V: 1.229 TB/s on-chip compute bandwidth.
        assert device.compute_bandwidth_bytes_per_sec == pytest.approx(1.2288e12)


class TestModeTransitionsOverCommands:
    def test_enter_ab(self, ch):
        d = Driver(ch)
        d.enter_ab()
        assert ch.mode is PimMode.AB

    def test_ab_entry_with_open_row_raises(self, ch):
        d = Driver(ch)
        d.issue(Command(CommandType.ACT, 1, 1, row=3))  # leave a row open
        d.issue(Command(CommandType.ACT, 0, 0, row=ch.memory_map.abmr_row))
        with pytest.raises(RuntimeError):
            d.issue(Command(CommandType.PRE, 0, 0))

    def test_full_round_trip(self, ch):
        d = Driver(ch)
        d.enter_ab()
        d.enter_ab_pim()
        assert ch.mode is PimMode.AB_PIM
        d.exit_ab_pim()
        assert ch.mode is PimMode.AB
        d.issue(Command(CommandType.ACT, 0, 0, row=ch.memory_map.sbmr_row))
        d.issue(Command(CommandType.PRE, 0, 0))
        assert ch.mode is PimMode.SB

    def test_units_started_on_ab_pim_entry(self, ch):
        d = Driver(ch)
        for unit in ch.units:
            unit.regs.crf[0] = assemble_words("EXIT")[0]
        d.enter_ab()
        d.enter_ab_pim()
        for unit in ch.units:
            assert unit.exited  # EXIT resolved immediately at start


class TestAllBankBroadcast:
    def test_act_opens_all_banks(self, ch):
        d = Driver(ch)
        d.enter_ab()
        d.issue(Command(CommandType.ACT, 0, 0, row=7))
        assert all(bank.open_row == 7 for bank in ch.banks)

    def test_column_write_broadcasts(self, ch):
        d = Driver(ch)
        d.enter_ab()
        d.issue(Command(CommandType.ACT, 0, 0, row=7))
        d.issue(wr(0, 0, 7, 3, value=0xAB))
        for bank in ch.banks:
            assert (bank.peek(7, 3) == 0xAB).all()

    def test_read_returns_addressed_bank(self, ch):
        d = Driver(ch)
        ch.banks[6].poke(7, 0, np.full(32, 0x55, dtype=np.uint8))
        d.enter_ab()
        d.issue(Command(CommandType.ACT, 0, 0, row=7))
        out = d.issue(Command(CommandType.RD, 1, 2, row=7, col=0))  # bank 6
        assert (out == 0x55).all()

    def test_ab_column_cadence_is_tccd_l(self, ch):
        d = Driver(ch)
        d.enter_ab()
        d.issue(Command(CommandType.ACT, 0, 0, row=7))
        c0 = ch.earliest_issue(Command(CommandType.RD, 0, 0, row=7, col=0))
        ch.issue(Command(CommandType.RD, 0, 0, row=7, col=0), c0)
        # Even a different bank group waits tCCD_L in all-bank mode.
        bound = ch.earliest_issue(Command(CommandType.RD, 3, 0, row=7, col=1))
        assert bound == c0 + HBM2_1GHZ.tccd_l

    def test_prea_in_ab_closes_everything(self, ch):
        d = Driver(ch)
        d.enter_ab()
        d.issue(Command(CommandType.ACT, 0, 0, row=7))
        self_cycle = max(b.earliest_pre() for b in ch.banks)
        ch.issue(Command(CommandType.PREA), self_cycle)
        assert ch.all_banks_idle


class TestRegisterAccess:
    def test_crf_broadcast_write(self, ch):
        d = Driver(ch)
        d.enter_ab()
        words = np.array(assemble_words("NOP\nEXIT")[:8], dtype="<u4")
        d.issue(
            Command(CommandType.WR, 0, 0, row=ch.memory_map.crf_row, col=0,
                    data=words.view(np.uint8))
        )
        for unit in ch.units:
            assert unit.regs.crf[:8] == list(words)

    def test_grf_broadcast_write_and_sb_read(self, ch):
        d = Driver(ch)
        d.enter_ab()
        payload = np.arange(32, dtype=np.uint8)
        d.issue(
            Command(CommandType.WR, 0, 0, row=ch.memory_map.grf_row, col=9,
                    data=payload)
        )
        for unit in ch.units:
            assert np.array_equal(unit.regs.read_grf_column(9), payload)
        # Back in SB mode, a register read targets one unit's copy.
        d.issue(Command(CommandType.ACT, 0, 0, row=ch.memory_map.sbmr_row))
        d.issue(Command(CommandType.PRE, 0, 0))
        ch.units[3].regs.grf_b[1][:] = np.float16(9.0)  # unit of bank 6/7
        d.issue(Command(CommandType.ACT, 1, 2, row=ch.memory_map.grf_row))
        out = d.issue(Command(CommandType.RD, 1, 2, row=ch.memory_map.grf_row, col=9))
        assert (out.view(np.float16) == np.float16(9.0)).all()

    def test_srf_write(self, ch):
        d = Driver(ch)
        d.enter_ab()
        scalars = np.arange(8, dtype=np.float16)
        payload = np.zeros(32, dtype=np.uint8)
        payload[:16] = scalars.view(np.uint8)
        d.issue(
            Command(CommandType.WR, 0, 0, row=ch.memory_map.srf_row, col=0,
                    data=payload)
        )
        for unit in ch.units:
            assert np.array_equal(unit.regs.srf_m, scalars)

    def test_pim_op_mode_readback(self, ch):
        d = Driver(ch)
        d.enter_ab()
        d.enter_ab_pim()
        out = d.issue(
            Command(CommandType.RD, 0, 0, row=ch.memory_map.conf_row, col=0)
        )
        assert out[0] == 1


class TestPimTriggering:
    def _setup_fill_kernel(self, ch, d):
        for unit in ch.units:
            unit.even_bank.poke(7, 0, np.full(16, unit.unit_id, dtype=np.float16).view(np.uint8))
        d.enter_ab()
        words = np.array(assemble_words("FILL GRF_A[0], EVEN_BANK\nEXIT")[:8], dtype="<u4")
        d.issue(Command(CommandType.WR, 0, 0, row=ch.memory_map.crf_row, col=0,
                        data=words.view(np.uint8)))
        d.enter_ab_pim()

    def test_column_read_triggers_all_units(self, ch):
        d = Driver(ch)
        self._setup_fill_kernel(ch, d)
        d.issue(Command(CommandType.ACT, 0, 0, row=7))
        out = d.issue(Command(CommandType.RD, 0, 0, row=7, col=0))
        # AB-PIM column reads do not drive the external I/O.
        assert out is None
        for unit in ch.units:
            assert (unit.regs.grf_a[0] == np.float16(unit.unit_id)).all()
        assert ch.pim_triggered_columns == 1

    def test_pim_write_trigger_does_not_clobber_banks(self, ch):
        d = Driver(ch)
        for unit in ch.units:
            unit.even_bank.poke(7, 0, np.full(32, 0x77, dtype=np.uint8))
        d.enter_ab()
        words = np.array(assemble_words("MOV GRF_A[0], HOST\nEXIT")[:8], dtype="<u4")
        d.issue(Command(CommandType.WR, 0, 0, row=ch.memory_map.crf_row, col=0,
                        data=words.view(np.uint8)))
        d.enter_ab_pim()
        d.issue(Command(CommandType.ACT, 0, 0, row=7))
        d.issue(wr(0, 0, 7, 0, value=0x11))
        # The instruction routed the burst to GRF, not to the cells.
        for unit in ch.units:
            assert (unit.even_bank.peek(7, 0) == 0x77).all()
            assert (unit.regs.grf_a[0].view(np.uint8) == 0x11).all()

    def test_register_rows_never_trigger(self, ch):
        d = Driver(ch)
        self._setup_fill_kernel(ch, d)
        before = ch.units[0].stats.triggers
        d.issue(Command(CommandType.RD, 0, 0, row=ch.memory_map.grf_row, col=0))
        assert ch.units[0].stats.triggers == before
