"""Test-suite configuration.

Hypothesis runs derandomized so the suite is reproducible end to end —
appropriate for a reproduction repository where "tests pass" should mean
the same thing on every machine.  Remove the profile locally to fuzz.
"""

from hypothesis import settings

settings.register_profile("repro", derandomize=True, deadline=None)
settings.load_profile("repro")
