"""Tests for the bit-accurate softfloat (repro.common.fp16)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.fp16 import (
    BF16,
    FP16,
    FP32,
    FloatFormat,
    bits_to_f16,
    f16_to_bits,
    fp_add,
    fp_mac,
    fp_mul,
    fp_relu,
    vec_add,
    vec_mac,
    vec_mul,
    vec_relu,
)

f16_bits = st.integers(min_value=0, max_value=0xFFFF)


class TestFormatProperties:
    def test_fp16_geometry(self):
        assert FP16.width == 16
        assert FP16.bias == 15
        assert FP16.exp_max == 31

    def test_bf16_geometry(self):
        assert BF16.width == 16
        assert BF16.bias == 127

    def test_fp32_geometry(self):
        assert FP32.width == 32
        assert FP32.bias == 127

    def test_fp16_max_finite(self):
        assert FP16.max_finite == 65504.0

    def test_fp16_min_normal(self):
        assert FP16.min_normal == 2.0**-14

    def test_fp16_min_subnormal(self):
        assert FP16.min_subnormal == 2.0**-24

    def test_bf16_dynamic_range_wider_than_fp16(self):
        assert BF16.max_finite > FP16.max_finite
        assert BF16.min_normal < FP16.min_normal


class TestCodec:
    def test_zero(self):
        assert FP16.to_bits(0.0) == 0x0000
        assert FP16.to_bits(-0.0) == 0x8000
        assert FP16.from_bits(0x0000) == 0.0

    def test_one(self):
        assert FP16.to_bits(1.0) == 0x3C00
        assert FP16.from_bits(0x3C00) == 1.0

    def test_negative(self):
        assert FP16.to_bits(-2.0) == 0xC000

    def test_infinity(self):
        assert FP16.to_bits(math.inf) == 0x7C00
        assert FP16.to_bits(-math.inf) == 0xFC00
        assert math.isinf(FP16.from_bits(0x7C00))

    def test_nan(self):
        bits = FP16.to_bits(math.nan)
        assert (bits >> 10) & 0x1F == 0x1F
        assert bits & 0x3FF != 0
        assert math.isnan(FP16.from_bits(bits))

    def test_overflow_to_infinity(self):
        assert FP16.to_bits(70000.0) == 0x7C00
        assert FP16.to_bits(-70000.0) == 0xFC00

    def test_subnormal_roundtrip(self):
        value = 3 * FP16.min_subnormal
        assert FP16.from_bits(FP16.to_bits(value)) == value

    def test_underflow_to_zero(self):
        assert FP16.to_bits(FP16.min_subnormal / 4) == 0

    def test_round_to_nearest_even_tie(self):
        # Exactly halfway between 2048 and 2050 (FP16 spacing at 2^11 is 2).
        assert FP16.round(2049.0) == 2048.0
        assert FP16.round(2051.0) == 2052.0

    def test_subnormal_rounds_up_to_normal(self):
        value = FP16.min_normal * (1 - 2.0**-12)
        assert FP16.round(value) == FP16.min_normal

    @given(f16_bits)
    def test_roundtrip_matches_numpy_decode(self, bits):
        ours = FP16.from_bits(bits)
        theirs = float(np.uint16(bits).view(np.float16))
        if math.isnan(theirs):
            assert math.isnan(ours)
        else:
            assert ours == theirs

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_encode_matches_numpy(self, value):
        ours = FP16.to_bits(value)
        theirs = int(np.float32(value).astype(np.float16).view(np.uint16))
        assert ours == theirs

    @given(f16_bits)
    def test_bf16_roundtrip_is_identity(self, bits):
        value = BF16.from_bits(bits)
        if math.isnan(value):
            return
        assert BF16.to_bits(value) == bits or value == 0.0


class TestScalarOps:
    @given(f16_bits, f16_bits)
    @settings(max_examples=300)
    def test_mul_matches_numpy(self, a, b):
        ours = fp_mul(FP16, a, b)
        theirs = int(
            (np.uint16(a).view(np.float16) * np.uint16(b).view(np.float16)).view(
                np.uint16
            )
        )
        assert _equiv(ours, theirs)

    @given(f16_bits, f16_bits)
    @settings(max_examples=300)
    def test_add_matches_numpy(self, a, b):
        ours = fp_add(FP16, a, b)
        theirs = int(
            (np.uint16(a).view(np.float16) + np.uint16(b).view(np.float16)).view(
                np.uint16
            )
        )
        assert _equiv(ours, theirs)

    def test_mac_is_two_roundings(self):
        # MAC = add(round(mul)), not a fused multiply-add (Section IV-B).
        acc = FP16.to_bits(1.0)
        a = FP16.to_bits(1.0 + 2.0**-10)
        b = FP16.to_bits(1.0 + 2.0**-10)
        expected = fp_add(FP16, acc, fp_mul(FP16, a, b))
        assert fp_mac(FP16, acc, a, b) == expected

    def test_relu_positive_passthrough(self):
        bits = FP16.to_bits(3.5)
        assert fp_relu(FP16, bits) == bits

    def test_relu_negative_is_zero(self):
        assert fp_relu(FP16, FP16.to_bits(-3.5)) == 0

    def test_relu_negative_zero_is_zero(self):
        # The sign-bit mux cannot distinguish -0.0 from a negative number.
        assert fp_relu(FP16, 0x8000) == 0

    def test_relu_negative_nan_is_zero(self):
        assert fp_relu(FP16, 0xFE00) == 0


class TestVectorOps:
    @given(st.lists(f16_bits, min_size=16, max_size=16),
           st.lists(f16_bits, min_size=16, max_size=16))
    @settings(max_examples=50)
    def test_vec_mul_matches_scalar(self, a_bits, b_bits):
        a = np.array(a_bits, dtype=np.uint16).view(np.float16)
        b = np.array(b_bits, dtype=np.uint16).view(np.float16)
        result = vec_mul(a, b).view(np.uint16)
        for i in range(16):
            assert _equiv(int(result[i]), fp_mul(FP16, a_bits[i], b_bits[i]))

    @given(st.lists(f16_bits, min_size=16, max_size=16),
           st.lists(f16_bits, min_size=16, max_size=16))
    @settings(max_examples=50)
    def test_vec_add_matches_scalar(self, a_bits, b_bits):
        a = np.array(a_bits, dtype=np.uint16).view(np.float16)
        b = np.array(b_bits, dtype=np.uint16).view(np.float16)
        result = vec_add(a, b).view(np.uint16)
        for i in range(16):
            assert _equiv(int(result[i]), fp_add(FP16, a_bits[i], b_bits[i]))

    def test_vec_mac_two_stage(self):
        acc = np.full(16, np.float16(1.0))
        a = np.full(16, np.float16(1.0009765625))
        b = np.full(16, np.float16(1.0009765625))
        out = vec_mac(acc, a, b)
        expected = bits_to_f16(
            fp_mac(FP16, f16_to_bits(1.0), f16_to_bits(1.0009765625),
                   f16_to_bits(1.0009765625))
        )
        assert float(out[0]) == expected

    def test_vec_relu_matches_scalar(self):
        values = np.array(
            [1.0, -1.0, 0.0, -0.0, 65504.0, -65504.0], dtype=np.float16
        )
        result = vec_relu(values)
        expected_bits = [fp_relu(FP16, int(v)) for v in values.view(np.uint16)]
        assert list(result.view(np.uint16)) == expected_bits

    def test_vec_relu_preserves_dtype(self):
        assert vec_relu(np.zeros(4, dtype=np.float64)).dtype == np.float16


def _equiv(a_bits: int, b_bits: int) -> bool:
    """Bit equality, with all NaN encodings considered equal."""
    if a_bits == b_bits:
        return True
    a_nan = (a_bits & 0x7C00) == 0x7C00 and (a_bits & 0x3FF) != 0
    b_nan = (b_bits & 0x7C00) == 0x7C00 and (b_bits & 0x3FF) != 0
    return a_nan and b_nan


class TestCustomFormat:
    def test_fp8_e4m3_like_format(self):
        fp8 = FloatFormat("fp8", exp_bits=4, man_bits=3)
        assert fp8.width == 8
        assert fp8.round(1.0) == 1.0
        # Rounds to 3 significand bits.
        assert fp8.round(1.0 + 2.0**-4) == 1.0

    def test_invalid_bit_range_raises(self):
        with pytest.raises(Exception):
            from repro.common.bitfield import get_bits

            get_bits(0, 1, 2)
