"""Tests for the (72,64) SEC-DED codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

import numpy as np

from repro.common.ecc import (
    CHECK_BITS,
    STATUS_CODES,
    DecodeStatus,
    check_words,
    decode,
    decode_words,
    encode,
    encode_words,
)

u64 = st.integers(min_value=0, max_value=2**64 - 1)


class TestEncode:
    def test_zero_data_zero_check(self):
        assert encode(0) == 0

    def test_check_fits_in_byte(self):
        assert 0 <= encode(2**64 - 1) < 256
        assert CHECK_BITS == 8

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            encode(2**64)
        with pytest.raises(ValueError):
            encode(-1)

    @given(u64)
    def test_clean_decode(self, data):
        result = decode(data, encode(data))
        assert result.status is DecodeStatus.CLEAN
        assert result.data == data


class TestSingleBitCorrection:
    @given(u64, st.integers(0, 63))
    def test_data_bit_flip_corrected(self, data, bit):
        check = encode(data)
        corrupted = data ^ (1 << bit)
        result = decode(corrupted, check)
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == data

    @given(u64, st.integers(0, 7))
    def test_check_bit_flip_corrected(self, data, bit):
        check = encode(data) ^ (1 << bit)
        result = decode(data, check)
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == data


class TestDoubleBitDetection:
    @given(u64, st.integers(0, 63), st.integers(0, 63))
    def test_two_data_bits_detected(self, data, a, b):
        if a == b:
            return
        check = encode(data)
        corrupted = data ^ (1 << a) ^ (1 << b)
        result = decode(corrupted, check)
        assert result.status is DecodeStatus.UNCORRECTABLE

    @given(u64, st.integers(0, 63), st.integers(0, 6))
    def test_data_plus_check_bit_detected_or_corrected_safely(self, data, a, b):
        """A data flip plus a Hamming-bit flip must never be *mis*corrected
        to wrong data that claims CLEAN/CORRECTED with a different value...
        it is either flagged, or corrected back to the true data."""
        check = encode(data) ^ (1 << b)
        corrupted = data ^ (1 << a)
        result = decode(corrupted, check)
        if result.status is not DecodeStatus.UNCORRECTABLE:
            # Rare aliasing cases decode as single-bit: the recovered data
            # must never be silently wrong by more than the known flip.
            assert result.status in (DecodeStatus.CORRECTED, DecodeStatus.CLEAN)


class TestCheckByteCorners:
    """Check-byte faults, bit by bit: the 7 Hamming parity positions
    (check bits 0-6) and the overall-parity bit (check bit 7) each need
    their own correction path, and a double flip confined to the check
    byte must still raise the uncorrectable flag — the data is fine, but
    SEC-DED cannot know that."""

    @pytest.mark.parametrize("bit", range(7))
    def test_hamming_parity_position_flip_corrected(self, bit):
        data = 0x0123_4567_89AB_CDEF
        result = decode(data, encode(data) ^ (1 << bit))
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == data

    def test_overall_parity_bit_flip_corrected(self):
        data = 0xFEDC_BA98_7654_3210
        result = decode(data, encode(data) ^ (1 << 7))
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == data

    @given(u64, st.integers(0, 7), st.integers(0, 7))
    def test_double_flip_within_check_byte_detected(self, data, a, b):
        if a == b:
            return
        check = encode(data) ^ (1 << a) ^ (1 << b)
        result = decode(data, check)
        assert result.status is DecodeStatus.UNCORRECTABLE

    @given(u64, st.integers(0, 71))
    def test_any_single_flip_anywhere_is_corrected(self, data, pos):
        """encode -> flip exactly one of the 72 stored bits -> decode
        always recovers the original data, wherever the flip landed."""
        check = encode(data)
        if pos < 64:
            result = decode(data ^ (1 << pos), check)
        else:
            result = decode(data, check ^ (1 << (pos - 64)))
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == data


class TestSystematicProperties:
    def test_distinct_data_distinct_codewords(self):
        seen = {}
        for data in (0, 1, 2, 3, 2**63, 2**64 - 1, 0xDEADBEEF):
            key = (data, encode(data))
            assert key not in seen
            seen[key] = True

    def test_all_single_positions_have_unique_syndromes(self):
        """Every correctable position must map to a distinct syndrome —
        checked by correcting each of the 64 data bits of one word."""
        data = 0x0123_4567_89AB_CDEF
        check = encode(data)
        for bit in range(64):
            result = decode(data ^ (1 << bit), check)
            assert result.data == data, bit


class TestVectorizedCodec:
    """The array codec (``encode_words``/``check_words``/``decode_words``)
    must be indistinguishable from mapping the scalar codec over the
    words — the batched ECC column path in :class:`repro.dram.ecc.EccBank`
    is built on that equivalence."""

    words_list = st.lists(u64, min_size=1, max_size=64)

    @given(words_list)
    def test_encode_words_matches_scalar(self, words):
        batched = encode_words(np.array(words, dtype="<u8"))
        assert batched.dtype == np.uint8
        assert list(batched) == [encode(w) for w in words]

    @given(words_list)
    def test_check_words_clean(self, words):
        arr = np.array(words, dtype="<u8")
        assert check_words(arr, encode_words(arr)).all()

    # Per-word corruption: 0 = clean, 1 = single data flip, 2 = double
    # data flip, 3 = single check flip, 4 = double check flip,
    # 5 = one data + one check flip (also a double error).
    flips = st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 63), st.integers(0, 63)),
        min_size=1,
        max_size=64,
    )

    @staticmethod
    def _corrupt(words, flips):
        data = []
        checks = []
        for word, (kind, a, b) in zip(words, flips):
            check = encode(word)
            if kind == 1:
                word ^= 1 << a
            elif kind == 2 and a != b:
                word ^= (1 << a) ^ (1 << b)
            elif kind == 3:
                check ^= 1 << (a % 8)
            elif kind == 4 and a % 8 != b % 8:
                check ^= (1 << (a % 8)) ^ (1 << (b % 8))
            elif kind == 5:
                word ^= 1 << a
                check ^= 1 << (b % 8)
            data.append(word)
            checks.append(check)
        return (
            np.array(data, dtype="<u8"),
            np.array(checks, dtype=np.uint8),
        )

    @given(words_list, flips)
    def test_check_words_matches_scalar_cleanliness(self, words, flips):
        arr, checks = self._corrupt(words, flips)
        clean = check_words(arr, checks)
        for i in range(arr.size):
            scalar = decode(int(arr[i]), int(checks[i]))
            assert bool(clean[i]) == (scalar.status is DecodeStatus.CLEAN)

    @given(words_list, flips)
    def test_decode_words_matches_scalar(self, words, flips):
        arr, checks = self._corrupt(words, flips)
        out, statuses = decode_words(arr, checks)
        for i in range(arr.size):
            scalar = decode(int(arr[i]), int(checks[i]))
            assert STATUS_CODES[scalar.status] == statuses[i], i
            if scalar.status is not DecodeStatus.UNCORRECTABLE:
                assert int(out[i]) == scalar.data, i

    def test_decode_words_leaves_input_untouched(self):
        arr = np.array([0x1234], dtype="<u8")
        checks = encode_words(arr)
        arr_corrupt = arr ^ np.uint64(1)
        out, statuses = decode_words(arr_corrupt, checks)
        assert int(arr_corrupt[0]) == 0x1235  # input not mutated
        assert int(out[0]) == 0x1234
        assert statuses[0] == STATUS_CODES[DecodeStatus.CORRECTED]

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            decode_words(np.zeros(2, dtype="<u8"), np.zeros(3, dtype=np.uint8))
