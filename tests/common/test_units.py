"""Tests for unit conversions (repro.common.units)."""

import pytest

from repro.common.units import (
    bytes_per_sec,
    cycles_for_ns,
    geomean,
    ns_per_cycle,
    to_gbps,
)


class TestClockConversions:
    def test_ns_per_cycle(self):
        assert ns_per_cycle(1e9) == 1.0
        assert ns_per_cycle(2e9) == 0.5

    def test_ns_per_cycle_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ns_per_cycle(0)

    def test_cycles_for_ns_exact(self):
        assert cycles_for_ns(10.0, 1e9) == 10

    def test_cycles_for_ns_rounds_up(self):
        assert cycles_for_ns(10.1, 1e9) == 11


class TestBandwidth:
    def test_bytes_per_sec(self):
        assert bytes_per_sec(32, 2.0) == pytest.approx(16e9)

    def test_bytes_per_sec_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            bytes_per_sec(32, 0)

    def test_to_gbps(self):
        assert to_gbps(307.2e9) == pytest.approx(307.2)

    def test_hbm2_pch_bandwidth(self):
        # One 32 B access per tCCD_S (2 cycles at 1.2 GHz) = 19.2 GB/s.
        assert to_gbps(bytes_per_sec(32, 2 / 1.2)) == pytest.approx(19.2)


class TestGeomean:
    def test_identity(self):
        assert geomean([4.0]) == 4.0

    def test_pair(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
