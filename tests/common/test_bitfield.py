"""Tests for bit-field helpers (repro.common.bitfield)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.bitfield import BitField, Layout, get_bits, mask, set_bits


class TestPrimitives:
    def test_mask(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(8) == 0xFF
        assert mask(32) == 0xFFFFFFFF

    def test_get_bits(self):
        assert get_bits(0b101100, 3, 2) == 0b11
        assert get_bits(0xDEADBEEF, 31, 0) == 0xDEADBEEF
        assert get_bits(0xF0, 7, 4) == 0xF

    def test_set_bits(self):
        assert set_bits(0, 3, 2, 0b11) == 0b1100
        assert set_bits(0xFF, 3, 0, 0) == 0xF0

    def test_set_bits_overflow_raises(self):
        with pytest.raises(ValueError):
            set_bits(0, 2, 0, 8)

    def test_negative_value_raises(self):
        with pytest.raises(ValueError):
            set_bits(0, 2, 0, -1)

    def test_inverted_range_raises(self):
        with pytest.raises(ValueError):
            get_bits(0, 0, 1)

    @given(st.integers(0, 2**32 - 1), st.integers(0, 31), st.integers(0, 31))
    def test_get_set_roundtrip(self, word, a, b):
        hi, lo = max(a, b), min(a, b)
        value = get_bits(word, hi, lo)
        assert set_bits(word, hi, lo, value) == word


class TestBitField:
    def test_width(self):
        assert BitField("f", 7, 4).width == 4

    def test_extract_insert_roundtrip(self):
        field = BitField("f", 11, 8)
        word = field.insert(0, 0xA)
        assert field.extract(word) == 0xA


class TestLayout:
    def test_pack_unpack(self):
        layout = Layout(16, [("a", 3, 0), ("b", 7, 4), ("c", 15, 8)])
        word = layout.pack(a=5, b=9, c=0xAB)
        assert layout.unpack(word) == {"a": 5, "b": 9, "c": 0xAB}

    def test_unnamed_bits_are_zero(self):
        layout = Layout(16, [("a", 3, 0)])
        assert layout.pack(a=0xF) == 0xF

    def test_overlap_detection(self):
        with pytest.raises(ValueError):
            Layout(8, [("a", 3, 0), ("b", 4, 3)])

    def test_field_exceeding_word_raises(self):
        with pytest.raises(ValueError):
            Layout(8, [("a", 8, 0)])

    def test_unknown_field_raises(self):
        layout = Layout(8, [("a", 3, 0)])
        with pytest.raises(KeyError):
            layout.pack(z=1)

    def test_contains(self):
        layout = Layout(8, [("a", 3, 0)])
        assert "a" in layout
        assert "b" not in layout
