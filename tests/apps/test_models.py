"""Tests for the workload models (Table VI + Section VII-A compositions)."""

import pytest

from repro.apps.layers import Add, Bn, Conv, Fc, HostWork, Lstm
from repro.apps.microbench import ADD_SIZES, BN_SIZES, GEMV_SIZES
from repro.apps.models import ALEXNET, ALL_APPS, DS2, GNMT, RESNET50, RNNT


class TestTableVI:
    def test_gemv_sizes(self):
        dims = {(g.m, g.n) for g in GEMV_SIZES}
        assert dims == {(1024, 4096), (2048, 4096), (4096, 8192), (8192, 8192)}

    def test_add_sizes(self):
        sizes = [a.n for a in ADD_SIZES]
        assert sizes == [2**21, 2**22, 2**23, 2**24]

    def test_bn_mirrors_add(self):
        assert [b.n for b in BN_SIZES] == [a.n for a in ADD_SIZES]

    def test_gemv_flops(self):
        assert GEMV_SIZES[0].flops == 2 * 1024 * 4096
        assert GEMV_SIZES[0].weight_bytes == 8 * 1024 * 1024

    def test_add_traffic(self):
        assert ADD_SIZES[0].bytes_touched == 3 * 2 * 2**21


class TestDS2:
    """Paper: 2 convolution layers, 6 bidirectional LSTMs, 1 FC."""

    def test_composition(self):
        convs = [l for l in DS2.layers if isinstance(l, Conv)]
        lstms = [l for l in DS2.layers if isinstance(l, Lstm)]
        fcs = [l for l in DS2.layers if isinstance(l, Fc)]
        assert len(convs) == 2
        assert len(lstms) == 6
        assert len(fcs) == 1
        assert all(l.bidirectional for l in lstms)

    def test_deepspeech_width(self):
        lstm = [l for l in DS2.layers if isinstance(l, Lstm)][1]
        assert lstm.hidden == 1760
        assert lstm.input_dim == 2 * 1760  # concatenated bidirectional input


class TestRNNT:
    """Paper: 5 encoder LSTMs, 2 prediction LSTMs, 2 FC joint layers."""

    def test_composition(self):
        lstms = [l for l in RNNT.layers if isinstance(l, Lstm)]
        fcs = [l for l in RNNT.layers if isinstance(l, Fc)]
        assert len(lstms) == 7
        assert len(fcs) == 2
        assert sum(1 for l in lstms if l.fused) == 5  # encoders
        assert sum(1 for l in lstms if not l.fused) == 2  # prediction net


class TestGNMT:
    """Paper: 8 encoder + 8 decoder LSTMs with attention."""

    def test_composition(self):
        lstms = [l for l in GNMT.layers if isinstance(l, Lstm)]
        assert len(lstms) == 16
        encoders = [l for l in lstms if l.fused]
        decoders = [l for l in lstms if not l.fused]
        assert len(encoders) == 8
        assert len(decoders) == 8

    def test_projection_runs_per_step(self):
        proj = next(l for l in GNMT.layers if isinstance(l, Fc))
        assert proj.calls == 50


class TestCnnModels:
    def test_alexnet_composition(self):
        convs = [l for l in ALEXNET.layers if isinstance(l, Conv)]
        fcs = [l for l in ALEXNET.layers if isinstance(l, Fc)]
        assert len(convs) == 5 and len(fcs) == 3
        assert (fcs[0].m, fcs[0].n) == (4096, 9216)

    def test_alexnet_conv_flops_total(self):
        total = sum(l.flops for l in ALEXNET.layers if isinstance(l, Conv))
        assert 1.4e9 <= total <= 2.0e9  # ~1.7 GFLOP with mul+add

    def test_resnet_has_bn_and_shortcuts(self):
        assert any(isinstance(l, Bn) for l in RESNET50.layers)
        assert any(isinstance(l, Add) for l in RESNET50.layers)

    def test_resnet_conv_dominant(self):
        conv_flops = sum(l.flops for l in RESNET50.layers if isinstance(l, Conv))
        assert conv_flops >= 4e9


class TestLayerHelpers:
    def test_lstm_weight_bytes(self):
        lstm = Lstm("l", 10, 512, 256)
        assert lstm.weight_bytes_per_step == 2 * 4 * 256 * (512 + 256)
        assert lstm.gate_m == 1024
        assert lstm.directions == 1

    def test_pim_eligibility_flags(self):
        assert Lstm("l", 1, 8, 8).pim_eligible
        assert Fc("f", 8, 8).pim_eligible
        assert Bn("b", 8).pim_eligible
        assert Add("a", 8).pim_eligible
        assert not Conv("c", 1.0).pim_eligible
        assert not HostWork("h", 1.0).pim_eligible

    def test_every_app_has_pim_layers_except_pure_conv(self):
        for app in ALL_APPS:
            assert app.pim_layers(), app.name
