"""Tests for the recommendation-model capacity analysis (Section VII-A)."""

import pytest

from repro.apps.capacity import (
    DLRM_LIKE,
    RecommendationModel,
    SystemCapacity,
    capacity_report,
)


class TestPaperExclusion:
    def test_dlrm_scale_is_256gb_class(self):
        """The paper cites ~256 GB of embedding tables."""
        gb = DLRM_LIKE.table_bytes / 1024**3
        assert 200 <= gb <= 400

    def test_hbm_system_capacity_32gb(self):
        """The paper: 32 GB with 4 HBM devices."""
        system = SystemCapacity("PROC-HBM", devices=4)
        assert system.total_bytes == 32 * 1024**3

    def test_dlrm_does_not_fit(self):
        report = capacity_report(DLRM_LIKE, SystemCapacity("PROC-HBM"))
        assert report["fits"] == 0.0
        assert report["residency_fraction"] < 0.2

    def test_small_model_fits(self):
        small = RecommendationModel(
            "toy", num_tables=8, rows_per_table=100_000, embedding_dim=32
        )
        report = capacity_report(small, SystemCapacity("PROC-HBM"))
        assert report["fits"] == 1.0
        assert report["residency_fraction"] == 1.0

    def test_embedding_layer_not_pim_eligible(self):
        layer = DLRM_LIKE.embedding_layer()
        assert not layer.pim_eligible
        assert layer.table_bytes == DLRM_LIKE.table_bytes

    def test_capacity_scales_with_devices(self):
        doubled = SystemCapacity("x8", devices=8)
        report = capacity_report(DLRM_LIKE, doubled)
        base = capacity_report(DLRM_LIKE, SystemCapacity("x4"))
        assert report["residency_fraction"] == pytest.approx(
            2 * base["residency_fraction"]
        )
