"""Trace-ISA interop: PA codec, parser contract, execute/emit idempotence.

The hypothesis properties are the satellite acceptance checks: the
35-bit physical-address codec round-trips every field assignment, and
``execute(parse(emit(parse(t))))`` reproduces the device-state digest of
``execute(parse(t))`` on ``all_inst.trace``-style inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PimReplayError
from repro.stack import Request
from repro.tools.pimulator import (
    PA_BITS,
    PhysicalAddress,
    TraceOp,
    emit_trace,
    execute_trace,
    parse_trace,
    requests_to_trace,
    sample_trace,
)


class TestPhysicalAddress:
    def test_pa_is_35_bits(self):
        assert PA_BITS == 35

    def test_known_layout(self):
        # Rank is the MSB; offset the 5 LSBs.
        assert PhysicalAddress(rank=1).encode() == 1 << 34
        assert PhysicalAddress(offset=31).encode() == 31
        assert PhysicalAddress(column=1).encode() == 1 << 5
        assert PhysicalAddress(row=1).encode() == 1 << 10

    def test_field_overflow_rejected(self):
        with pytest.raises(PimReplayError):
            PhysicalAddress(rank=2).encode()
        with pytest.raises(PimReplayError):
            PhysicalAddress.decode(1 << PA_BITS)

    @given(
        rank=st.integers(0, 1),
        channel=st.integers(0, 63),
        bankgroup=st.integers(0, 3),
        bank=st.integers(0, 3),
        row=st.integers(0, (1 << 14) - 1),
        column=st.integers(0, 31),
        offset=st.integers(0, 31),
    )
    @settings(max_examples=50, deadline=None)
    def test_encode_decode_round_trip(
        self, rank, channel, bankgroup, bank, row, column, offset
    ):
        pa = PhysicalAddress(
            rank=rank, channel=channel, bankgroup=bankgroup, bank=bank,
            row=row, column=column, offset=offset,
        )
        assert PhysicalAddress.decode(pa.encode()) == pa

    @given(value=st.integers(0, (1 << 35) - 1))
    @settings(max_examples=50, deadline=None)
    def test_decode_encode_round_trip(self, value):
        assert PhysicalAddress.decode(value).encode() == value


class TestParser:
    def test_sample_covers_every_line_form(self):
        ops = parse_trace(sample_trace())
        kinds = {op.kind for op in ops}
        assert kinds == {"SB", "AB", "GPR", "CFR", "MEM", "PIM", "AiM"}
        mnemonics = {op.mnemonic for op in ops if op.kind == "PIM"}
        assert {"MOV", "FILL", "ADD", "MUL", "MAC", "MAD",
                "NOP", "JUMP", "EXIT"} <= mnemonics

    def test_comments_and_blank_lines_skipped(self):
        ops = parse_trace("# header\n\n  # indented comment\nAB W  # trail\n")
        assert len(ops) == 1
        assert ops[0].kind == "AB"

    def test_quoted_cfr_id_accepted(self):
        ops = parse_trace('W CFR "0" 7\n')
        assert ops[0].kind == "CFR"
        assert ops[0].args == (0, 7)

    @pytest.mark.parametrize(
        "line",
        [
            "SB X 5",
            "SB R",
            "QQ 1",
            "W MEM 1 2",
            "W GPR",
            "PIM FROB GRF,0 BANK,0",
            "PIM ADD GRF,0 BANK,0",
            "PIM MOV GRF,0 BANK,0 SRF,0",
            "PIM ADD GRF;0 BANK,0 SRF,0",
            "PIM ADD XRF,0 BANK,0 SRF,0",
            "AiM WR_SBK 0 1 0",
            "AiM WR_GB 2 2",
            "AiM",
            "SB R 99999999999999",
        ],
    )
    def test_malformed_lines_rejected_with_line_number(self, line):
        with pytest.raises(PimReplayError, match="line 1"):
            parse_trace(line)

    def test_emit_is_canonical_fixed_point(self):
        ops = parse_trace(sample_trace())
        emitted = emit_trace(ops)
        assert emit_trace(parse_trace(emitted)) == emitted


class TestExecution:
    def test_execution_is_deterministic(self):
        ops = parse_trace(sample_trace())
        assert (
            execute_trace(ops).state_digest()
            == execute_trace(ops).state_digest()
        )

    def test_digest_reflects_device_state(self):
        base = parse_trace(sample_trace())
        extended = base + [TraceOp("GPR", rw="W", args=(5,))]
        assert (
            execute_trace(base).state_digest()
            != execute_trace(extended).state_digest()
        )

    def test_sample_executes_pim_instructions(self):
        execution = execute_trace(parse_trace(sample_trace()))
        assert execution.executed == 22
        assert execution.pim_instructions == 6  # control ops don't count
        assert execution.all_bank

    def test_emit_parse_execute_idempotent_on_sample(self):
        ops = parse_trace(sample_trace())
        first = execute_trace(ops).state_digest()
        second = execute_trace(parse_trace(emit_trace(ops))).state_digest()
        assert first == second

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_emit_parse_execute_idempotent_property(self, seed):
        """Property (satellite): any trace built from the sample's line
        forms round-trips — emit, re-parse, re-execute, same digest."""
        rng = np.random.default_rng(seed)
        ops = list(parse_trace(sample_trace()))
        rng.shuffle(ops)
        ops = ops[: max(1, int(rng.integers(1, len(ops) + 1)))]
        first = execute_trace(ops).state_digest()
        second = execute_trace(parse_trace(emit_trace(ops))).state_digest()
        assert first == second


class TestRequestEmission:
    def _requests(self):
        rng = np.random.default_rng(9)
        return [
            Request(
                "gemv",
                weights=(rng.standard_normal((16, 8)) * 0.25).astype(
                    np.float16
                ),
                a=(rng.standard_normal(8) * 0.25).astype(np.float16),
                trace_id="t0",
            ),
            Request(
                "add",
                a=(rng.standard_normal(32) * 0.25).astype(np.float16),
                b=(rng.standard_normal(32) * 0.25).astype(np.float16),
                trace_id="t1",
            ),
            Request(
                "relu",
                a=(rng.standard_normal(16) * 0.25).astype(np.float16),
                trace_id="t2",
            ),
        ]

    def test_requests_emit_executable_trace(self):
        ops = requests_to_trace(self._requests())
        assert any(
            op.kind == "PIM" and op.mnemonic == "MAC" for op in ops
        ), "a GEMV request must emit MAC instructions"
        execution = execute_trace(ops)
        assert execution.executed == len(ops)

    def test_request_emission_round_trips(self):
        ops = requests_to_trace(self._requests())
        first = execute_trace(ops).state_digest()
        text = emit_trace(ops)
        second = execute_trace(parse_trace(text)).state_digest()
        assert first == second
