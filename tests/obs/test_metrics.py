"""Unit tests of the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs import (
    DEFAULT_BUCKETS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestPrimitives:
    def test_counter_accumulates_and_rejects_negative(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(3.5)
        gauge.inc(0.5)
        gauge.dec(2.0)
        assert gauge.value == 2.0

    def test_histogram_counts_and_percentiles(self):
        hist = Histogram("h", buckets=(10.0, 100.0))
        for v in (1, 5, 50, 500):
            hist.observe(v)
        assert hist.count == 4
        assert hist.mean() == pytest.approx(139.0)
        # Cumulative buckets: <=10, <=100, overflow.
        assert hist.counts == [2, 1, 1]
        assert hist.percentile(0.0) == 1
        assert hist.percentile(1.0) == 500
        assert hist.percentile(0.5) == 50  # nearest rank

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(100.0, 10.0))

    def test_empty_histogram_degrades_to_zero(self):
        hist = Histogram("h")
        assert hist.count == 0
        assert hist.mean() == 0.0
        assert hist.percentile(0.95) == 0.0

    def test_default_buckets_cover_serving_latencies(self):
        assert DEFAULT_BUCKETS_NS[0] == 1e3
        assert DEFAULT_BUCKETS_NS[-1] == 1e8
        assert tuple(sorted(DEFAULT_BUCKETS_NS)) == DEFAULT_BUCKETS_NS


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_contains_getitem_names(self):
        registry = MetricsRegistry()
        registry.gauge("z.late")
        registry.counter("a.early")
        assert "z.late" in registry and "missing" not in registry
        assert registry["a.early"].name == "a.early"
        assert registry.names() == ["a.early", "z.late"]

    def test_value_scalars_and_histogram_count(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(10.0)
        assert registry.value("c") == 3
        assert registry.value("g") == 1.5
        assert registry.value("h") == 1.0

    def test_as_dict_expands_histograms(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        for v in (100.0, 200.0):
            hist.observe(v)
        snapshot = registry.as_dict()
        assert snapshot["lat.count"] == 2.0
        assert snapshot["lat.mean"] == 150.0
        assert "lat.p95" in snapshot and "lat.p99" in snapshot

    def test_render_is_sorted_and_typed(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(5.0)
        registry.counter("c").inc()
        registry.gauge("g").set(2)
        lines = registry.render()
        assert lines[0].startswith("counter   c = 1")
        assert lines[1].startswith("gauge     g = 2")
        assert lines[2].startswith("histogram h count=1")

    def test_custom_buckets_pass_through(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0))
        assert hist.buckets == (1.0, 2.0)
