"""Trace-invariant property tests over real traced serving sessions.

Whatever the workload, seed, fault pattern, or overload pressure, a
trace must satisfy the structural invariants the exporters and the
reconciliation check depend on:

* spans nest properly (every child's interval lies inside its parent's);
* the durations of a parent's children sum to no more than the parent
  per sequential group (same channel, or the serving-serial group);
* every terminal request owns exactly one request-category span, whose
  ``outcome`` attribute matches the request's terminal outcome;
* rejected/expired requests own zero device-command spans (dropped work
  must not appear to have consumed the device).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultConfig
from repro.obs import span_children
from repro.stack.runtime import PimSystem, SystemConfig
from repro.stack.server import PimServer

EPS = 1e-6

BASE = SystemConfig(
    num_pchs=4, num_rows=256, simulate_pchs=1, trace=True
)


def rand(shape, seed, scale=0.25):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * scale).astype(np.float16)


def traced_session(
    seed,
    requests=14,
    gap_ns=1500.0,
    faults=False,
    overload=False,
    deadline_ns=None,
):
    """One served session under the given pressure; returns
    ``(system, handles, profile)``."""
    config = BASE.replace(server_seed=seed)
    if faults:
        config = config.replace(
            ecc=True,
            scrub_interval=2,
            faults=FaultConfig(
                bit_flip_rate=5e-4,
                check_flip_rate=5e-4,
                failed_channels=(0,),
                seed=seed,
            ),
        )
    if overload:
        config = config.replace(queue_depth=3, admission="shed")
    rng = np.random.default_rng(seed)
    w = rand((48, 80), seed)
    arrivals = np.cumsum(rng.exponential(gap_ns, size=requests))
    system = PimSystem(config)
    handles = []
    with PimServer(system, lanes=2, max_batch=4) as server:
        for i, arrival in enumerate(arrivals):
            kwargs = dict(
                arrival_ns=float(arrival),
                priority=int(i % 2),
                deadline_ns=deadline_ns,
            )
            if i % 3 == 0:
                handles.append(
                    server.submit("gemv", weights=w, a=rand(80, seed + i),
                                  **kwargs)
                )
            elif i % 3 == 1:
                handles.append(
                    server.submit("add", a=rand(192, seed + i),
                                  b=rand(192, seed + 500 + i), **kwargs)
                )
            else:
                handles.append(
                    server.submit("relu", a=rand(192, seed + i), **kwargs)
                )
        profile = server.run()
    return system, handles, profile


def assert_trace_invariants(system, handles):
    tracer = system.tracer
    spans = tracer.spans
    by_id = {s.span_id: s for s in spans}
    children = span_children(spans)

    # No span was left open, and every parent reference resolves.
    assert tracer.current is None
    for span in spans:
        assert span.parent_id is None or span.parent_id in by_id

    # Proper nesting: a child's interval lies inside its parent's.
    for span in spans:
        if span.parent_id is None:
            continue
        parent = by_id[span.parent_id]
        assert span.start_ns >= parent.start_ns - EPS, (span, parent)
        assert span.end_ns <= parent.end_ns + EPS, (span, parent)

    # Sequential groups of one parent's children must fit in the parent:
    # device spans of one channel run back-to-back on that channel's
    # controller clock, everything else runs serially on the lane.
    for parent_id, kids in children.items():
        if parent_id is None:
            continue
        parent = by_id[parent_id]
        groups = {}
        for kid in kids:
            groups.setdefault(kid.channel, []).append(kid)
        for group in groups.values():
            total = sum(k.duration_ns for k in group)
            assert total <= parent.duration_ns + EPS, (parent, group)

    # Exactly one request span per terminal request, matching outcomes.
    request_spans = tracer.request_spans()
    spans_by_request = {}
    for span in request_spans:
        rid = span.attrs["request_id"]
        assert rid not in spans_by_request, f"duplicate span for {rid}"
        spans_by_request[rid] = span
    assert set(spans_by_request) == {h.request_id for h in handles}
    for handle in handles:
        span = spans_by_request[handle.request_id]
        assert span.attrs["outcome"] == handle.outcome.value

    # Dropped work owns zero device-command spans (transitively).
    for handle in handles:
        if handle.outcome.value not in ("rejected", "expired"):
            continue
        span = spans_by_request[handle.request_id]
        stack = [span.span_id]
        while stack:
            for kid in children.get(stack.pop(), []):
                assert kid.category != "device", (
                    f"dropped request {handle.request_id} owns device span"
                )
                stack.append(kid.span_id)


class TestInvariantsUnderPressure:
    def test_plain_session(self):
        system, handles, _ = traced_session(seed=3)
        assert_trace_invariants(system, handles)
        # Sanity: the plain session actually completed on the device.
        assert any(s.category == "device" for s in system.tracer.spans)

    def test_faulty_session_keeps_invariants(self):
        system, handles, profile = traced_session(seed=7, faults=True)
        assert_trace_invariants(system, handles)
        assert profile.retries + profile.fallbacks > 0

    def test_overloaded_session_keeps_invariants(self):
        system, handles, profile = traced_session(
            seed=11, overload=True, gap_ns=200.0, requests=24
        )
        assert_trace_invariants(system, handles)
        assert profile.rejected > 0

    def test_expired_requests_own_no_device_spans(self):
        system, handles, profile = traced_session(
            seed=5, deadline_ns=1.0, gap_ns=200.0
        )
        assert_trace_invariants(system, handles)
        assert profile.expired > 0

    @given(
        seed=st.integers(0, 2**16),
        faults=st.booleans(),
        overload=st.booleans(),
        requests=st.integers(4, 18),
        gap_ns=st.sampled_from([200.0, 1000.0, 4000.0]),
    )
    @settings(max_examples=8, deadline=None)
    def test_random_sessions(self, seed, faults, overload, requests, gap_ns):
        system, handles, _ = traced_session(
            seed=seed,
            requests=requests,
            gap_ns=gap_ns,
            faults=faults,
            overload=overload,
        )
        assert_trace_invariants(system, handles)
