"""Unit tests of the hierarchical tracer (repro.obs.tracer)."""

import pytest

from repro.obs import Span, Tracer, span_children, span_roots


class TestSpanNesting:
    def test_begin_nests_under_open_span(self):
        tracer = Tracer()
        outer = tracer.begin("request", category="request")
        inner = tracer.begin("dispatch", category="dispatch")
        assert inner.parent_id == outer.span_id
        tracer.finish(inner, 1.0, 2.0)
        tracer.finish(outer, 0.0, 3.0)
        assert outer.parent_id is None
        assert [s.name for s in tracer.spans] == ["dispatch", "request"]

    def test_record_is_leaf_under_current(self):
        tracer = Tracer()
        parent = tracer.begin("kernel")
        leaf = tracer.record("drain", 5.0, 9.0, category="device", channel=2)
        assert leaf.parent_id == parent.span_id
        assert leaf.duration_ns == 4.0
        # record() must not leave the leaf on the open-span stack.
        assert tracer.current is parent

    def test_finish_pops_by_identity_after_skipped_child(self):
        """A crash that skips a child's finish() must not corrupt the
        parent's position on the stack."""
        tracer = Tracer()
        outer = tracer.begin("request")
        tracer.begin("dispatch")  # never finished (simulated crash)
        tracer.finish(outer, 0.0, 1.0)
        assert tracer.current is None
        # Only the finished span was recorded.
        assert [s.name for s in tracer.spans] == ["request"]

    def test_finish_clamps_negative_duration(self):
        tracer = Tracer()
        span = tracer.begin("x")
        tracer.finish(span, 10.0, 4.0)
        assert span.end_ns == span.start_ns == 10.0

    def test_span_ids_unique_and_monotonic(self):
        tracer = Tracer()
        ids = [tracer.record(f"s{i}", 0, 1).span_id for i in range(5)]
        assert ids == sorted(set(ids))

    def test_helpers_group_children_and_roots(self):
        tracer = Tracer()
        a = tracer.begin("a")
        tracer.record("a1", 0, 1)
        tracer.record("a2", 1, 2)
        tracer.finish(a, 0, 2)
        tracer.record("b", 2, 3)
        children = span_children(tracer.spans)
        assert [s.name for s in children[a.span_id]] == ["a1", "a2"]
        assert [s.name for s in span_roots(tracer.spans)] == ["a", "b"]

    def test_request_spans_filter(self):
        tracer = Tracer()
        tracer.record("request:gemv", 0, 1, category="request")
        tracer.record("drain", 0, 1, category="device")
        tracer.record("request:add", 1, 2, category="request")
        assert [s.name for s in tracer.request_spans()] == [
            "request:gemv", "request:add",
        ]


class TestClockDomains:
    def test_cycles_ns_uses_base_and_tck(self):
        tracer = Tracer(tck_ns=0.5)
        tracer.set_clock(1000.0, 2000)
        assert tracer.cycles_ns(2000) == 1000.0
        assert tracer.cycles_ns(2100) == 1000.0 + 50.0

    def test_lagging_cycles_clamp_to_base(self):
        """A channel whose clock lagged the lane front when the base was
        pinned must land at base_ns, not before it."""
        tracer = Tracer(tck_ns=1.0)
        tracer.set_clock(500.0, 100)
        assert tracer.cycles_ns(40) == 500.0

    def test_record_cycles_converts_both_ends(self):
        tracer = Tracer(tck_ns=2.0)
        tracer.set_clock(100.0, 10)
        span = tracer.record_cycles("drain", 10, 15, channel=1)
        assert span.start_ns == 100.0
        assert span.end_ns == 110.0

    def test_now_ns_is_clock_base(self):
        tracer = Tracer()
        tracer.set_clock(42.0, 7)
        assert tracer.now_ns == 42.0


class TestClampSince:
    def test_spans_clamped_into_window(self):
        tracer = Tracer()
        mark = tracer.mark()
        tracer.record("early", 0.0, 5.0)
        tracer.record("late", 90.0, 120.0)
        tracer.clamp_since(mark, 10.0, 100.0)
        early, late = tracer.spans
        assert (early.start_ns, early.end_ns) == (10.0, 10.0)
        assert (late.start_ns, late.end_ns) == (90.0, 100.0)

    def test_only_records_after_mark_are_touched(self):
        tracer = Tracer()
        untouched = tracer.record("before", 0.0, 5.0)
        mark = tracer.mark()
        tracer.record("after", 0.0, 5.0)
        tracer.clamp_since(mark, 10.0, 100.0)
        assert (untouched.start_ns, untouched.end_ns) == (0.0, 5.0)
        assert tracer.spans[1].start_ns == 10.0

    def test_events_rebuilt_when_clamped(self):
        tracer = Tracer()
        mark = tracer.mark()
        tracer.event("retry", at_ns=500.0)
        tracer.clamp_since(mark, 0.0, 100.0)
        assert tracer.events[0].at_ns == 100.0
        assert tracer.events[0].name == "retry"


class TestEvents:
    def test_event_attaches_to_open_span(self):
        tracer = Tracer()
        span = tracer.begin("kernel")
        event = tracer.event("fault", at_ns=3.0, category="fault", lane=1)
        assert event.parent_id == span.span_id
        assert event.at_ns == 3.0
        tracer.finish(span, 0, 5)

    def test_unanchored_event_lands_on_clock_base(self):
        tracer = Tracer()
        tracer.set_clock(77.0, 0)
        assert tracer.event("scrub").at_ns == 77.0

    def test_reset_clears_everything(self):
        tracer = Tracer()
        tracer.begin("open")
        tracer.record("done", 0, 1)
        tracer.event("e")
        tracer.set_clock(9.0, 9)
        tracer.reset()
        assert tracer.spans == [] and tracer.events == []
        assert tracer.current is None
        assert tracer.now_ns == 0.0
        # Ids restart so two identically-driven tracers match exactly.
        assert tracer.record("x", 0, 1).span_id == 1
