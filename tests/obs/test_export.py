"""Exporter tests: Chrome trace, JSONL, timeline, validator, tree diff."""

import json

import pytest

from repro.obs import (
    Tracer,
    chrome_trace,
    diff_span_trees,
    render_timeline,
    span_tree_lines,
    validate_chrome_trace,
    write_chrome_trace,
    write_span_jsonl,
)
from repro.obs.export import SERVING_PID


def small_trace():
    tracer = Tracer()
    request = tracer.begin("request:gemv", category="request", lane=0)
    kernel = tracer.begin("kernel:gemv", category="kernel", lane=0)
    tracer.record("drain", 10.0, 40.0, category="device", channel=2)
    tracer.event("retry", at_ns=15.0, category="retry", lane=0)
    tracer.finish(kernel, 5.0, 45.0)
    tracer.finish(request, 0.0, 50.0, outcome="completed")
    return tracer


class TestChromeTrace:
    def test_structure(self):
        obj = chrome_trace(small_trace())
        assert obj["displayTimeUnit"] == "ns"
        events = obj["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        # One process per pid: the serving layer plus pch2.
        assert {e["args"]["name"] for e in meta} == {"serving", "pch2"}
        assert len(spans) == 3 and len(instants) == 1

    def test_pid_tid_mapping(self):
        obj = chrome_trace(small_trace())
        by_name = {e["name"]: e for e in obj["traceEvents"] if e["ph"] == "X"}
        assert by_name["drain"]["pid"] == 2  # device span -> channel pid
        assert by_name["request:gemv"]["pid"] == SERVING_PID
        assert by_name["request:gemv"]["tid"] == 0  # lane

    def test_timestamps_in_microseconds(self):
        obj = chrome_trace(small_trace())
        drain = next(
            e for e in obj["traceEvents"] if e["name"] == "drain"
        )
        assert drain["ts"] == pytest.approx(0.010)
        assert drain["dur"] == pytest.approx(0.030)

    def test_args_carry_span_identity_and_attrs(self):
        obj = chrome_trace(small_trace())
        request = next(
            e for e in obj["traceEvents"] if e["name"] == "request:gemv"
        )
        assert request["args"]["outcome"] == "completed"
        assert request["args"]["parent_id"] is None

    def test_write_round_trips_and_validates(self, tmp_path):
        path = str(tmp_path / "trace.json")
        written = write_chrome_trace(small_trace(), path)
        with open(path) as fh:
            assert json.load(fh) == written
        assert validate_chrome_trace(path) == []


class TestJsonl:
    def test_one_line_per_span_and_event(self, tmp_path):
        tracer = small_trace()
        path = str(tmp_path / "spans.jsonl")
        lines = write_span_jsonl(tracer, path)
        assert lines == len(tracer.spans) + len(tracer.events)
        rows = [json.loads(l) for l in open(path)]
        assert sum(1 for r in rows if r["type"] == "span") == 3
        assert rows[-1]["type"] == "event" and rows[-1]["name"] == "retry"


class TestValidator:
    def test_flags_structural_problems(self):
        assert validate_chrome_trace({"nope": 1})
        assert validate_chrome_trace({"traceEvents": {}})
        assert "traceEvents is empty" in validate_chrome_trace(
            {"traceEvents": []}
        )[0]

    def test_flags_bad_events(self):
        bad = {
            "traceEvents": [
                {"name": "a", "ph": "Q", "ts": 0, "pid": 0, "tid": 0},
                {"name": "b", "ph": "X", "ts": 0, "pid": 0, "tid": 0},
                {"name": "c", "ph": "X", "ts": 0, "dur": -1, "pid": 0,
                 "tid": 0},
                {"name": "d", "ph": "i", "ts": 0, "pid": 0, "tid": 0,
                 "s": "z"},
                {"name": "e", "ph": "X", "ts": 0, "dur": 1, "pid": 0,
                 "tid": 0, "args": 7},
            ]
        }
        problems = "\n".join(validate_chrome_trace(bad))
        assert "invalid ph" in problems
        assert "missing dur" in problems
        assert "negative dur" in problems
        assert "invalid instant scope" in problems
        assert "args must be an object" in problems

    def test_unreadable_file(self, tmp_path):
        missing = str(tmp_path / "missing.json")
        assert "unreadable" in validate_chrome_trace(missing)[0]


class TestTimeline:
    def test_renders_bars_with_depth_indent(self):
        lines = render_timeline(small_trace())
        assert "3 spans" in lines[0]
        assert any("request:gemv@lane0" in l for l in lines)
        assert any("    drain@pch2" in l for l in lines)

    def test_truncation_never_drops_top_level(self):
        tracer = Tracer()
        for i in range(12):
            request = tracer.begin(f"request:{i}", category="request")
            tracer.record("drain", i, i + 1, category="device", channel=0)
            tracer.finish(request, i, i + 1)
        lines = render_timeline(tracer, max_spans=10)
        shown = [l for l in lines[1:] if "|" in l]
        assert len(shown) == 10
        assert all("request:" in l for l in shown)

    def test_empty_tracer(self):
        assert render_timeline(Tracer()) == ["(no spans recorded)"]


class TestTreeDiff:
    def test_identical_trees_diff_clean(self):
        assert diff_span_trees(small_trace(), small_trace()) is None

    def test_first_divergence_reported_with_path(self):
        a, b = small_trace(), small_trace()
        b.spans[0].end_ns += 1.0  # the drain leaf (recorded first)
        diverged = diff_span_trees(a, b)
        assert diverged is not None
        assert "drain" in diverged

    def test_missing_subtree_reported(self):
        a, b = small_trace(), Tracer()
        b_root = b.begin("request:gemv", category="request", lane=0)
        b.finish(b_root, 0.0, 50.0)
        diverged = diff_span_trees(a, b)
        assert diverged is not None

    def test_tree_lines_indent_by_depth(self):
        lines = span_tree_lines(small_trace())
        assert lines[0].startswith("request:gemv[request]")
        assert lines[1].startswith("  kernel:gemv[kernel]")
        assert lines[2].startswith("    drain[device] pch2")
