"""Documentation coverage guard: every public item carries a docstring.

A reproduction library lives or dies by its documentation; this meta-test
walks the entire ``repro`` package and fails on any public module, class,
function or method without one.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports documented at their home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


MODULES = list(_iter_modules())


class TestDocstrings:
    @pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
    def test_module_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__

    @pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
    def test_public_members_documented(self, module):
        missing = []
        for name, obj in _public_members(module):
            if not (obj.__doc__ and obj.__doc__.strip()):
                missing.append(name)
            if inspect.isclass(obj):
                for attr, member in vars(obj).items():
                    if attr.startswith("_") or not inspect.isfunction(member):
                        continue
                    if not (member.__doc__ and member.__doc__.strip()):
                        missing.append(f"{name}.{attr}")
        assert not missing, f"{module.__name__}: undocumented {missing}"
